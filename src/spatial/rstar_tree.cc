#include "spatial/rstar_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"

namespace dbsa::spatial {

RStarTree::RStarTree(Options opts) : opts_(opts) {
  DBSA_CHECK(opts_.max_entries >= 4);
  DBSA_CHECK(opts_.min_entries >= 2 &&
             opts_.min_entries <= (opts_.max_entries + 1) / 2);
  nodes_.push_back(Node{/*leaf=*/true, {}});
}

geom::Box RStarTree::NodeBox(uint32_t node_idx) const {
  geom::Box box;
  for (const Entry& e : nodes_[node_idx].entries) box.Extend(e.box);
  return box;
}

uint32_t RStarTree::NewNode(bool leaf) {
  nodes_.push_back(Node{leaf, {}});
  return static_cast<uint32_t>(nodes_.size() - 1);
}

void RStarTree::Insert(const geom::Box& box, uint32_t id) {
  pending_.push_back(Entry{box, id});
  reinsert_used_ = false;
  while (!pending_.empty()) {
    const Entry e = pending_.back();
    pending_.pop_back();
    const uint32_t sibling = InsertRec(root_, e);
    if (sibling != kNone) {
      // Root split: grow the tree.
      const uint32_t new_root = NewNode(/*leaf=*/false);
      nodes_[new_root].entries.push_back(Entry{NodeBox(root_), root_});
      nodes_[new_root].entries.push_back(Entry{NodeBox(sibling), sibling});
      root_ = new_root;
      ++height_;
    }
  }
  ++size_;
}

uint32_t RStarTree::ChooseChild(const Node& node, const geom::Box& box) const {
  const size_t n = node.entries.size();
  DBSA_DCHECK(n > 0);
  // If children are leaves, minimize overlap enlargement (R* rule);
  // otherwise minimize area enlargement.
  const bool children_are_leaves = nodes_[node.entries[0].handle].leaf;

  // Precompute enlargements; they are the secondary criterion everywhere.
  std::vector<double> enlargement(n);
  for (size_t i = 0; i < n; ++i) {
    const geom::Box& eb = node.entries[i].box;
    enlargement[i] = eb.Union(box).Area() - eb.Area();
  }

  if (!children_are_leaves) {
    size_t best = 0;
    for (size_t i = 1; i < n; ++i) {
      if (enlargement[i] < enlargement[best] ||
          (enlargement[i] == enlargement[best] &&
           node.entries[i].box.Area() < node.entries[best].box.Area())) {
        best = i;
      }
    }
    return static_cast<uint32_t>(best);
  }

  // Leaf-parent level: minimize overlap enlargement. Per the R* paper's
  // recommendation for larger nodes, only the 8 entries with the least
  // area enlargement are examined.
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  const size_t k = std::min<size_t>(n, 8);
  std::partial_sort(order.begin(), order.begin() + k, order.end(),
                    [&](size_t a, size_t b) { return enlargement[a] < enlargement[b]; });

  double best_primary = std::numeric_limits<double>::infinity();
  double best_secondary = std::numeric_limits<double>::infinity();
  double best_area = std::numeric_limits<double>::infinity();
  size_t best = order[0];
  for (size_t oi = 0; oi < k; ++oi) {
    const size_t i = order[oi];
    const geom::Box& eb = node.entries[i].box;
    const geom::Box grown = eb.Union(box);
    double overlap_delta = 0.0;
    for (size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      overlap_delta += grown.Intersection(node.entries[j].box).Area() -
                       eb.Intersection(node.entries[j].box).Area();
    }
    const double area = eb.Area();
    if (overlap_delta < best_primary ||
        (overlap_delta == best_primary && enlargement[i] < best_secondary) ||
        (overlap_delta == best_primary && enlargement[i] == best_secondary &&
         area < best_area)) {
      best_primary = overlap_delta;
      best_secondary = enlargement[i];
      best_area = area;
      best = i;
    }
  }
  return static_cast<uint32_t>(best);
}

uint32_t RStarTree::InsertRec(uint32_t node_idx, const Entry& entry) {
  Node& node = nodes_[node_idx];
  if (node.leaf) {
    node.entries.push_back(entry);
    if (node.entries.size() > static_cast<size_t>(opts_.max_entries)) {
      return HandleOverflow(node_idx);
    }
    return kNone;
  }
  const uint32_t child_pos = ChooseChild(node, entry.box);
  const uint32_t child_idx = node.entries[child_pos].handle;
  const uint32_t sibling = InsertRec(child_idx, entry);
  // Vector may have reallocated during recursion; re-fetch.
  Node& node2 = nodes_[node_idx];
  node2.entries[child_pos].box = NodeBox(child_idx);
  if (sibling != kNone) {
    node2.entries.push_back(Entry{NodeBox(sibling), sibling});
    if (node2.entries.size() > static_cast<size_t>(opts_.max_entries)) {
      return SplitNode(node_idx);
    }
  }
  return kNone;
}

uint32_t RStarTree::HandleOverflow(uint32_t node_idx) {
  Node& node = nodes_[node_idx];
  if (opts_.forced_reinsert && !reinsert_used_ && node_idx != root_) {
    reinsert_used_ = true;
    // Remove the 30% of entries whose centers are farthest from the node
    // center and queue them for reinsertion.
    const geom::Box nb = NodeBox(node_idx);
    const geom::Point c = nb.Center();
    std::sort(node.entries.begin(), node.entries.end(),
              [&c](const Entry& a, const Entry& b) {
                return geom::Distance2(a.box.Center(), c) <
                       geom::Distance2(b.box.Center(), c);
              });
    const size_t keep =
        node.entries.size() - std::max<size_t>(1, node.entries.size() * 3 / 10);
    for (size_t i = keep; i < node.entries.size(); ++i) {
      pending_.push_back(node.entries[i]);
    }
    node.entries.resize(keep);
    return kNone;
  }
  return SplitNode(node_idx);
}

uint32_t RStarTree::SplitNode(uint32_t node_idx) {
  Node& node = nodes_[node_idx];
  std::vector<Entry> entries = std::move(node.entries);
  const size_t total = entries.size();
  const size_t m = static_cast<size_t>(opts_.min_entries);

  // R* split: for each axis and each sort order (by min, by max), consider
  // distributions (first k vs rest); pick the axis with minimum total
  // margin, then the distribution with minimum overlap (tie: min area).
  struct Candidate {
    int axis;
    bool by_max;
    size_t split_at;
  };
  double best_axis_margin = std::numeric_limits<double>::infinity();
  int best_axis = 0;
  bool best_axis_by_max = false;

  auto sort_entries = [&entries](int axis, bool by_max) {
    std::sort(entries.begin(), entries.end(), [axis, by_max](const Entry& a,
                                                             const Entry& b) {
      const double av = axis == 0 ? (by_max ? a.box.max.x : a.box.min.x)
                                  : (by_max ? a.box.max.y : a.box.min.y);
      const double bv = axis == 0 ? (by_max ? b.box.max.x : b.box.min.x)
                                  : (by_max ? b.box.max.y : b.box.min.y);
      return av < bv;
    });
  };

  for (int axis = 0; axis < 2; ++axis) {
    for (const bool by_max : {false, true}) {
      sort_entries(axis, by_max);
      double margin_sum = 0.0;
      for (size_t k = m; k + m <= total; ++k) {
        geom::Box left, right;
        for (size_t i = 0; i < k; ++i) left.Extend(entries[i].box);
        for (size_t i = k; i < total; ++i) right.Extend(entries[i].box);
        margin_sum += left.Margin() + right.Margin();
      }
      if (margin_sum < best_axis_margin) {
        best_axis_margin = margin_sum;
        best_axis = axis;
        best_axis_by_max = by_max;
      }
    }
  }

  sort_entries(best_axis, best_axis_by_max);
  double best_overlap = std::numeric_limits<double>::infinity();
  double best_area = std::numeric_limits<double>::infinity();
  size_t best_k = m;
  // Prefix/suffix boxes for O(n) distribution evaluation.
  std::vector<geom::Box> prefix(total + 1), suffix(total + 1);
  for (size_t i = 0; i < total; ++i) {
    prefix[i + 1] = prefix[i].Union(entries[i].box);
  }
  for (size_t i = total; i-- > 0;) {
    suffix[i] = suffix[i + 1].Union(entries[i].box);
  }
  for (size_t k = m; k + m <= total; ++k) {
    const double overlap = prefix[k].Intersection(suffix[k]).Area();
    const double area = prefix[k].Area() + suffix[k].Area();
    if (overlap < best_overlap || (overlap == best_overlap && area < best_area)) {
      best_overlap = overlap;
      best_area = area;
      best_k = k;
    }
  }

  const uint32_t sibling_idx = NewNode(node.leaf);
  // NewNode may reallocate nodes_; re-fetch the node reference.
  Node& node2 = nodes_[node_idx];
  Node& sibling = nodes_[sibling_idx];
  node2.entries.assign(entries.begin(), entries.begin() + best_k);
  sibling.entries.assign(entries.begin() + best_k, entries.end());
  return sibling_idx;
}

void RStarTree::QueryBox(const geom::Box& query, std::vector<uint32_t>* out) const {
  out->clear();
  VisitBox(query, [out](uint32_t id) { out->push_back(id); });
}

size_t RStarTree::MemoryBytes() const {
  size_t bytes = 0;
  for (const Node& n : nodes_) {
    bytes += sizeof(Node) + n.entries.capacity() * sizeof(Entry);
  }
  return bytes;
}

}  // namespace dbsa::spatial
