// STR-packed R-tree (Leutenegger et al., ICDE'97) — one of the four
// spatial baselines in Figure 4, bulk-loaded by Sort-Tile-Recurse.

#ifndef DBSA_SPATIAL_STR_RTREE_H_
#define DBSA_SPATIAL_STR_RTREE_H_

#include <cstdint>
#include <vector>

#include "geom/box.h"

namespace dbsa::spatial {

/// Static bulk-loaded R-tree with contiguous node storage.
class StrRTree {
 public:
  struct Item {
    geom::Box box;
    uint32_t id;
  };

  /// Builds from items (copied, reordered internally).
  static StrRTree Build(std::vector<Item> items, int leaf_capacity = 32);

  void QueryBox(const geom::Box& query, std::vector<uint32_t>* out) const;

  template <typename Fn>
  void VisitBox(const geom::Box& query, Fn&& fn) const {
    if (items_.empty()) return;
    VisitRec(root_, query, fn);
  }

  size_t size() const { return items_.size(); }
  size_t MemoryBytes() const {
    return nodes_.size() * sizeof(Node) + items_.size() * sizeof(Item);
  }

 private:
  struct Node {
    geom::Box box;
    uint32_t first = 0;  ///< First child node (inner) or first item (leaf).
    uint32_t count = 0;
    bool leaf = true;
  };

  template <typename Fn>
  void VisitRec(uint32_t node_idx, const geom::Box& query, Fn& fn) const {
    const Node& node = nodes_[node_idx];
    if (node.leaf) {
      for (uint32_t i = 0; i < node.count; ++i) {
        const Item& item = items_[node.first + i];
        if (item.box.Intersects(query)) fn(item.id);
      }
      return;
    }
    for (uint32_t i = 0; i < node.count; ++i) {
      const Node& child = nodes_[node.first + i];
      if (child.box.Intersects(query)) VisitRec(node.first + i, query, fn);
    }
  }

  std::vector<Item> items_;
  std::vector<Node> nodes_;
  uint32_t root_ = 0;
};

}  // namespace dbsa::spatial

#endif  // DBSA_SPATIAL_STR_RTREE_H_
