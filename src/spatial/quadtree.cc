#include "spatial/quadtree.h"

#include <algorithm>
#include <numeric>

namespace dbsa::spatial {

QuadTree::QuadTree(const geom::Point* points, size_t n, const geom::Box& universe,
                   int bucket_size, int max_depth)
    : points_(points),
      universe_(universe),
      bucket_size_(std::max(bucket_size, 1)),
      max_depth_(std::max(max_depth, 1)) {
  ids_.resize(n);
  std::iota(ids_.begin(), ids_.end(), 0u);
  nodes_.push_back(Node{});
  BuildRec(0, universe_, 0, n, 0);
}

void QuadTree::BuildRec(uint32_t node_idx, const geom::Box& box, size_t lo, size_t hi,
                        int depth) {
  if (hi - lo <= static_cast<size_t>(bucket_size_) || depth >= max_depth_) {
    Node& node = nodes_[node_idx];
    node.leaf = true;
    node.first = static_cast<uint32_t>(lo);
    node.count = static_cast<uint32_t>(hi - lo);
    return;
  }
  const geom::Point c = box.Center();
  // Partition ids into quadrants: q = (y >= cy) * 2 + (x >= cx).
  auto by_y = std::partition(ids_.begin() + lo, ids_.begin() + hi,
                             [&](uint32_t id) { return points_[id].y < c.y; });
  const size_t mid_y = static_cast<size_t>(by_y - ids_.begin());
  auto by_x_low = std::partition(ids_.begin() + lo, ids_.begin() + mid_y,
                                 [&](uint32_t id) { return points_[id].x < c.x; });
  auto by_x_high = std::partition(ids_.begin() + mid_y, ids_.begin() + hi,
                                  [&](uint32_t id) { return points_[id].x < c.x; });
  const size_t cut0 = static_cast<size_t>(by_x_low - ids_.begin());
  const size_t cut1 = static_cast<size_t>(by_x_high - ids_.begin());

  const size_t bounds[5] = {lo, cut0, mid_y, cut1, hi};
  const geom::Box quads[4] = {
      geom::Box(box.min, c),
      geom::Box({c.x, box.min.y}, {box.max.x, c.y}),
      geom::Box({box.min.x, c.y}, {c.x, box.max.y}),
      geom::Box(c, box.max),
  };

  uint32_t child_idx[4];
  for (int q = 0; q < 4; ++q) {
    child_idx[q] = static_cast<uint32_t>(nodes_.size());
    nodes_.push_back(Node{});
  }
  {
    Node& node = nodes_[node_idx];
    node.leaf = false;
    for (int q = 0; q < 4; ++q) node.children[q] = child_idx[q];
  }
  for (int q = 0; q < 4; ++q) {
    BuildRec(child_idx[q], quads[q], bounds[q], bounds[q + 1], depth + 1);
  }
}

void QuadTree::QueryBox(const geom::Box& query, std::vector<uint32_t>* out) const {
  out->clear();
  VisitBox(query, [out](uint32_t id) { out->push_back(id); });
}

}  // namespace dbsa::spatial
