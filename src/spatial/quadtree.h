// Bucket PR quadtree over points (Finkel & Bentley) — Figure 4 baseline,
// implemented after the learned-index comparison study the paper builds
// on (Pandey et al., AIDB@VLDB'20).

#ifndef DBSA_SPATIAL_QUADTREE_H_
#define DBSA_SPATIAL_QUADTREE_H_

#include <cstdint>
#include <vector>

#include "geom/box.h"
#include "geom/point.h"

namespace dbsa::spatial {

/// Point-region quadtree with leaf buckets.
class QuadTree {
 public:
  /// Builds over `points` (not owned; must outlive the tree).
  QuadTree(const geom::Point* points, size_t n, const geom::Box& universe,
           int bucket_size = 64, int max_depth = 24);

  /// Ids (indices into the point array) inside the query box.
  void QueryBox(const geom::Box& query, std::vector<uint32_t>* out) const;

  template <typename Fn>
  void VisitBox(const geom::Box& query, Fn&& fn) const {
    VisitRec(0, universe_, query, fn);
  }

  size_t MemoryBytes() const {
    return nodes_.size() * sizeof(Node) + ids_.size() * sizeof(uint32_t);
  }

 private:
  struct Node {
    // Leaf: children[0] == 0 and [first, first+count) indexes ids_.
    // Inner: children hold node indices (0 = absent child is impossible
    // after split; all four are allocated).
    uint32_t children[4] = {0, 0, 0, 0};
    uint32_t first = 0;
    uint32_t count = 0;
    bool leaf = true;
  };

  void BuildRec(uint32_t node_idx, const geom::Box& box, size_t lo, size_t hi,
                int depth);

  template <typename Fn>
  void VisitRec(uint32_t node_idx, const geom::Box& box, const geom::Box& query,
                Fn& fn) const {
    const Node& node = nodes_[node_idx];
    if (node.leaf) {
      for (uint32_t i = 0; i < node.count; ++i) {
        const uint32_t id = ids_[node.first + i];
        if (query.Contains(points_[id])) fn(id);
      }
      return;
    }
    const geom::Point c = box.Center();
    const geom::Box quads[4] = {
        geom::Box(box.min, c),
        geom::Box({c.x, box.min.y}, {box.max.x, c.y}),
        geom::Box({box.min.x, c.y}, {c.x, box.max.y}),
        geom::Box(c, box.max),
    };
    for (int q = 0; q < 4; ++q) {
      if (quads[q].Intersects(query)) VisitRec(node.children[q], quads[q], query, fn);
    }
  }

  const geom::Point* points_;
  geom::Box universe_;
  int bucket_size_;
  int max_depth_;
  std::vector<Node> nodes_;
  std::vector<uint32_t> ids_;  ///< Bucket storage (leaf-owned slices).
};

}  // namespace dbsa::spatial

#endif  // DBSA_SPATIAL_QUADTREE_H_
