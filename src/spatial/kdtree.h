// Bucketed kd-tree over points (Bentley, CACM'75) — Figure 4 baseline.

#ifndef DBSA_SPATIAL_KDTREE_H_
#define DBSA_SPATIAL_KDTREE_H_

#include <cstdint>
#include <vector>

#include "geom/box.h"
#include "geom/point.h"

namespace dbsa::spatial {

/// Static median-split kd-tree with leaf buckets.
class KdTree {
 public:
  /// Builds over `points` (not owned; must outlive the tree).
  KdTree(const geom::Point* points, size_t n, int bucket_size = 32);

  void QueryBox(const geom::Box& query, std::vector<uint32_t>* out) const;

  template <typename Fn>
  void VisitBox(const geom::Box& query, Fn&& fn) const {
    if (ids_.empty()) return;
    VisitRec(0, query, fn);
  }

  size_t MemoryBytes() const {
    return nodes_.size() * sizeof(Node) + ids_.size() * sizeof(uint32_t);
  }

 private:
  struct Node {
    // Leaf: right == 0; [first, first+count) indexes ids_.
    // Inner: split on `axis` at `split`; left child = node_idx + 1,
    // right child = `right`.
    double split = 0.0;
    uint32_t right = 0;
    uint32_t first = 0;
    uint32_t count = 0;
    uint8_t axis = 0;
  };

  uint32_t BuildRec(size_t lo, size_t hi, int axis);

  template <typename Fn>
  void VisitRec(uint32_t node_idx, const geom::Box& query, Fn& fn) const {
    const Node& node = nodes_[node_idx];
    if (node.right == 0) {
      for (uint32_t i = 0; i < node.count; ++i) {
        const uint32_t id = ids_[node.first + i];
        if (query.Contains(points_[id])) fn(id);
      }
      return;
    }
    const double lo_q = node.axis == 0 ? query.min.x : query.min.y;
    const double hi_q = node.axis == 0 ? query.max.x : query.max.y;
    // <= because duplicates of the split value may sit in the left subtree.
    if (lo_q <= node.split) VisitRec(node_idx + 1, query, fn);
    if (hi_q >= node.split) VisitRec(node.right, query, fn);
  }

  const geom::Point* points_;
  std::vector<Node> nodes_;
  std::vector<uint32_t> ids_;
  int bucket_size_;
};

}  // namespace dbsa::spatial

#endif  // DBSA_SPATIAL_KDTREE_H_
