#include "spatial/kdtree.h"

#include <algorithm>
#include <numeric>

namespace dbsa::spatial {

KdTree::KdTree(const geom::Point* points, size_t n, int bucket_size)
    : points_(points), bucket_size_(std::max(bucket_size, 1)) {
  ids_.resize(n);
  std::iota(ids_.begin(), ids_.end(), 0u);
  if (n > 0) BuildRec(0, n, 0);
}

uint32_t KdTree::BuildRec(size_t lo, size_t hi, int axis) {
  const uint32_t node_idx = static_cast<uint32_t>(nodes_.size());
  nodes_.push_back(Node{});
  if (hi - lo <= static_cast<size_t>(bucket_size_)) {
    Node& node = nodes_[node_idx];
    node.right = 0;
    node.first = static_cast<uint32_t>(lo);
    node.count = static_cast<uint32_t>(hi - lo);
    return node_idx;
  }
  const size_t mid = lo + (hi - lo) / 2;
  std::nth_element(ids_.begin() + lo, ids_.begin() + mid, ids_.begin() + hi,
                   [&](uint32_t a, uint32_t b) {
                     return axis == 0 ? points_[a].x < points_[b].x
                                      : points_[a].y < points_[b].y;
                   });
  const uint32_t mid_id = ids_[mid];
  const double split = axis == 0 ? points_[mid_id].x : points_[mid_id].y;

  BuildRec(lo, mid, 1 - axis);  // Left child is node_idx + 1.
  const uint32_t right = BuildRec(mid, hi, 1 - axis);
  Node& node = nodes_[node_idx];
  node.split = split;
  node.right = right;
  node.axis = static_cast<uint8_t>(axis);
  return node_idx;
}

void KdTree::QueryBox(const geom::Box& query, std::vector<uint32_t>* out) const {
  out->clear();
  VisitBox(query, [out](uint32_t id) { out->push_back(id); });
}

}  // namespace dbsa::spatial
