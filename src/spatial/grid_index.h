// Uniform grid index over points in CSR layout — the "GPU Baseline" filter
// structure of Section 5.2 (a 1024^2 grid index) and the selectivity
// histogram substrate.

#ifndef DBSA_SPATIAL_GRID_INDEX_H_
#define DBSA_SPATIAL_GRID_INDEX_H_

#include <cstdint>
#include <vector>

#include "geom/box.h"
#include "geom/point.h"

namespace dbsa::spatial {

/// resolution x resolution uniform grid; each cell stores its point ids
/// contiguously (CSR).
class GridIndex {
 public:
  /// Builds over `points` (not owned; must outlive the index).
  GridIndex(const geom::Point* points, size_t n, const geom::Box& universe,
            uint32_t resolution);

  /// Ids of points inside the query box (cell filter + exact test on
  /// boundary cells).
  void QueryBox(const geom::Box& query, std::vector<uint32_t>* out) const;

  /// Visits the ids of every point in the given cell.
  template <typename Fn>
  void VisitCell(uint32_t cx, uint32_t cy, Fn&& fn) const {
    const size_t c = CellIndex(cx, cy);
    for (size_t i = starts_[c]; i < starts_[c + 1]; ++i) fn(ids_[i]);
  }

  /// Number of points in a cell.
  size_t CellCount(uint32_t cx, uint32_t cy) const {
    const size_t c = CellIndex(cx, cy);
    return starts_[c + 1] - starts_[c];
  }

  /// Cell coordinate range overlapping a box (clamped).
  void CellRange(const geom::Box& box, uint32_t* x0, uint32_t* y0, uint32_t* x1,
                 uint32_t* y1) const;

  geom::Box CellBox(uint32_t cx, uint32_t cy) const;

  uint32_t resolution() const { return resolution_; }
  size_t MemoryBytes() const {
    return starts_.size() * sizeof(size_t) + ids_.size() * sizeof(uint32_t);
  }

 private:
  size_t CellIndex(uint32_t cx, uint32_t cy) const {
    return static_cast<size_t>(cy) * resolution_ + cx;
  }
  void PointCell(const geom::Point& p, uint32_t* cx, uint32_t* cy) const;

  const geom::Point* points_;
  size_t n_;
  geom::Box universe_;
  uint32_t resolution_;
  double cell_w_, cell_h_;
  std::vector<size_t> starts_;  ///< resolution^2 + 1 offsets into ids_.
  std::vector<uint32_t> ids_;
};

}  // namespace dbsa::spatial

#endif  // DBSA_SPATIAL_GRID_INDEX_H_
