#include "spatial/grid_index.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace dbsa::spatial {

GridIndex::GridIndex(const geom::Point* points, size_t n, const geom::Box& universe,
                     uint32_t resolution)
    : points_(points), n_(n), universe_(universe), resolution_(resolution) {
  DBSA_CHECK(resolution >= 1);
  cell_w_ = universe_.Width() / resolution_;
  cell_h_ = universe_.Height() / resolution_;
  const size_t num_cells = static_cast<size_t>(resolution_) * resolution_;

  // Counting sort into CSR.
  starts_.assign(num_cells + 1, 0);
  std::vector<uint32_t> cell_of(n);
  for (size_t i = 0; i < n; ++i) {
    uint32_t cx, cy;
    PointCell(points_[i], &cx, &cy);
    const size_t c = CellIndex(cx, cy);
    cell_of[i] = static_cast<uint32_t>(c);
    ++starts_[c + 1];
  }
  for (size_t c = 0; c < num_cells; ++c) starts_[c + 1] += starts_[c];
  ids_.resize(n);
  std::vector<size_t> cursor(starts_.begin(), starts_.end() - 1);
  for (size_t i = 0; i < n; ++i) {
    ids_[cursor[cell_of[i]]++] = static_cast<uint32_t>(i);
  }
}

void GridIndex::PointCell(const geom::Point& p, uint32_t* cx, uint32_t* cy) const {
  const double fx = (p.x - universe_.min.x) / cell_w_;
  const double fy = (p.y - universe_.min.y) / cell_h_;
  const double max_idx = static_cast<double>(resolution_ - 1);
  *cx = static_cast<uint32_t>(std::clamp(std::floor(fx), 0.0, max_idx));
  *cy = static_cast<uint32_t>(std::clamp(std::floor(fy), 0.0, max_idx));
}

void GridIndex::CellRange(const geom::Box& box, uint32_t* x0, uint32_t* y0,
                          uint32_t* x1, uint32_t* y1) const {
  uint32_t ax, ay, bx, by;
  PointCell(box.min, &ax, &ay);
  PointCell(box.max, &bx, &by);
  *x0 = ax;
  *y0 = ay;
  *x1 = bx;
  *y1 = by;
}

geom::Box GridIndex::CellBox(uint32_t cx, uint32_t cy) const {
  const double x0 = universe_.min.x + cell_w_ * cx;
  const double y0 = universe_.min.y + cell_h_ * cy;
  return geom::Box(x0, y0, x0 + cell_w_, y0 + cell_h_);
}

void GridIndex::QueryBox(const geom::Box& query, std::vector<uint32_t>* out) const {
  out->clear();
  uint32_t x0, y0, x1, y1;
  CellRange(query, &x0, &y0, &x1, &y1);
  for (uint32_t cy = y0; cy <= y1; ++cy) {
    for (uint32_t cx = x0; cx <= x1; ++cx) {
      const bool interior_cell = query.Contains(CellBox(cx, cy));
      const size_t c = CellIndex(cx, cy);
      for (size_t i = starts_[c]; i < starts_[c + 1]; ++i) {
        const uint32_t id = ids_[i];
        if (interior_cell || query.Contains(points_[id])) out->push_back(id);
      }
    }
  }
}

}  // namespace dbsa::spatial
