#include "spatial/str_rtree.h"

#include <algorithm>
#include <cmath>

namespace dbsa::spatial {

StrRTree StrRTree::Build(std::vector<Item> items, int leaf_capacity) {
  StrRTree t;
  if (items.empty()) {
    t.nodes_.push_back(Node{geom::Box(), 0, 0, true});
    return t;
  }
  const size_t cap = static_cast<size_t>(std::max(leaf_capacity, 2));
  const size_t n = items.size();

  // Sort-Tile-Recurse: sort by x-center, cut into vertical slabs of
  // S * cap items, sort each slab by y-center, pack leaves of `cap`.
  const size_t num_leaves = (n + cap - 1) / cap;
  const size_t slabs = static_cast<size_t>(
      std::ceil(std::sqrt(static_cast<double>(num_leaves))));
  const size_t slab_items = slabs * cap;

  std::sort(items.begin(), items.end(), [](const Item& a, const Item& b) {
    return a.box.Center().x < b.box.Center().x;
  });
  for (size_t s = 0; s * slab_items < n; ++s) {
    const size_t lo = s * slab_items;
    const size_t hi = std::min(lo + slab_items, n);
    std::sort(items.begin() + lo, items.begin() + hi,
              [](const Item& a, const Item& b) {
                return a.box.Center().y < b.box.Center().y;
              });
  }
  t.items_ = std::move(items);

  // Pack leaves.
  std::vector<uint32_t> level;  // Node indices of the current level.
  for (size_t i = 0; i < n; i += cap) {
    Node leaf;
    leaf.leaf = true;
    leaf.first = static_cast<uint32_t>(i);
    leaf.count = static_cast<uint32_t>(std::min(cap, n - i));
    for (uint32_t j = 0; j < leaf.count; ++j) {
      leaf.box.Extend(t.items_[i + j].box);
    }
    level.push_back(static_cast<uint32_t>(t.nodes_.size()));
    t.nodes_.push_back(leaf);
  }

  // Pack upper levels until a single root remains. Children of one parent
  // must be contiguous in nodes_; each level is built contiguously, so
  // grouping consecutive runs works.
  while (level.size() > 1) {
    std::vector<uint32_t> next;
    for (size_t i = 0; i < level.size(); i += cap) {
      Node inner;
      inner.leaf = false;
      inner.first = level[i];
      inner.count = static_cast<uint32_t>(std::min(cap, level.size() - i));
      for (uint32_t j = 0; j < inner.count; ++j) {
        inner.box.Extend(t.nodes_[level[i] + j].box);
      }
      next.push_back(static_cast<uint32_t>(t.nodes_.size()));
      t.nodes_.push_back(inner);
    }
    level = std::move(next);
  }
  t.root_ = level[0];
  return t;
}

void StrRTree::QueryBox(const geom::Box& query, std::vector<uint32_t>* out) const {
  out->clear();
  VisitBox(query, [out](uint32_t id) { out->push_back(id); });
}

}  // namespace dbsa::spatial
