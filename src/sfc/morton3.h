// 3-D Morton encoding — the linearization for the voxel rasters of the
// paper's "Higher-Dimensional Data" extension (Section 6): 21 bits per
// axis interleave into a 63-bit key.

#ifndef DBSA_SFC_MORTON3_H_
#define DBSA_SFC_MORTON3_H_

#include <cstdint>

namespace dbsa::sfc {

/// Spreads the low 21 bits of x so bit i moves to bit 3i.
uint64_t SpreadBits3(uint32_t x);

/// Inverse of SpreadBits3.
uint32_t CollectBits3(uint64_t x);

/// Interleaves (x, y, z), 21 bits each; x occupies bits 0, 3, 6, ...
inline uint64_t Morton3Encode(uint32_t x, uint32_t y, uint32_t z) {
  return SpreadBits3(x) | (SpreadBits3(y) << 1) | (SpreadBits3(z) << 2);
}

/// Inverse of Morton3Encode.
inline void Morton3Decode(uint64_t code, uint32_t* x, uint32_t* y, uint32_t* z) {
  *x = CollectBits3(code);
  *y = CollectBits3(code >> 1);
  *z = CollectBits3(code >> 2);
}

}  // namespace dbsa::sfc

#endif  // DBSA_SFC_MORTON3_H_
