#include "sfc/morton.h"

namespace dbsa::sfc {

uint64_t SpreadBits(uint32_t x) {
  uint64_t v = x;
  v = (v | (v << 16)) & 0x0000FFFF0000FFFFULL;
  v = (v | (v << 8)) & 0x00FF00FF00FF00FFULL;
  v = (v | (v << 4)) & 0x0F0F0F0F0F0F0F0FULL;
  v = (v | (v << 2)) & 0x3333333333333333ULL;
  v = (v | (v << 1)) & 0x5555555555555555ULL;
  return v;
}

uint32_t CollectBits(uint64_t v) {
  v &= 0x5555555555555555ULL;
  v = (v | (v >> 1)) & 0x3333333333333333ULL;
  v = (v | (v >> 2)) & 0x0F0F0F0F0F0F0F0FULL;
  v = (v | (v >> 4)) & 0x00FF00FF00FF00FFULL;
  v = (v | (v >> 8)) & 0x0000FFFF0000FFFFULL;
  v = (v | (v >> 16)) & 0x00000000FFFFFFFFULL;
  return static_cast<uint32_t>(v);
}

}  // namespace dbsa::sfc
