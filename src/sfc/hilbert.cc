#include "sfc/hilbert.h"

namespace dbsa::sfc {

namespace {

// Rotates/flips a quadrant appropriately (classic Hilbert transform step).
inline void Rot(uint32_t n, uint32_t* x, uint32_t* y, uint32_t rx, uint32_t ry) {
  if (ry == 0) {
    if (rx == 1) {
      *x = n - 1 - *x;
      *y = n - 1 - *y;
    }
    const uint32_t t = *x;
    *x = *y;
    *y = t;
  }
}

}  // namespace

uint64_t HilbertEncode(uint32_t x, uint32_t y, int order) {
  uint64_t d = 0;
  for (int s = order - 1; s >= 0; --s) {
    const uint32_t rx = (x >> s) & 1u;
    const uint32_t ry = (y >> s) & 1u;
    d += static_cast<uint64_t>((3u * rx) ^ ry) << (2 * s);
    Rot(1u << order, &x, &y, rx, ry);
  }
  return d;
}

void HilbertDecode(uint64_t d, int order, uint32_t* out_x, uint32_t* out_y) {
  uint32_t x = 0, y = 0;
  for (int s = 0; s < order; ++s) {
    const uint32_t rx = 1u & static_cast<uint32_t>(d >> (2 * s + 1));
    const uint32_t ry = 1u & static_cast<uint32_t>((d >> (2 * s)) ^ rx);
    Rot(1u << s, &x, &y, rx, ry);
    x += rx << s;
    y += ry << s;
  }
  *out_x = x;
  *out_y = y;
}

}  // namespace dbsa::sfc
