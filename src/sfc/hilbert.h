// 2-D Hilbert curve encoding — the alternative linearization the paper
// mentions; it has better locality than Morton at the cost of a more
// expensive transform. Compared against Morton in bench/abl_sfc.

#ifndef DBSA_SFC_HILBERT_H_
#define DBSA_SFC_HILBERT_H_

#include <cstdint>

namespace dbsa::sfc {

/// Maps (x, y) on a 2^order x 2^order grid to its Hilbert index.
/// order must be in [1, 31].
uint64_t HilbertEncode(uint32_t x, uint32_t y, int order);

/// Inverse of HilbertEncode.
void HilbertDecode(uint64_t d, int order, uint32_t* x, uint32_t* y);

}  // namespace dbsa::sfc

#endif  // DBSA_SFC_HILBERT_H_
