#include "sfc/morton3.h"

namespace dbsa::sfc {

uint64_t SpreadBits3(uint32_t x) {
  uint64_t v = x & 0x1fffffu;  // 21 bits.
  v = (v | (v << 32)) & 0x1f00000000ffffULL;
  v = (v | (v << 16)) & 0x1f0000ff0000ffULL;
  v = (v | (v << 8)) & 0x100f00f00f00f00fULL;
  v = (v | (v << 4)) & 0x10c30c30c30c30c3ULL;
  v = (v | (v << 2)) & 0x1249249249249249ULL;
  return v;
}

uint32_t CollectBits3(uint64_t v) {
  v &= 0x1249249249249249ULL;
  v = (v | (v >> 2)) & 0x10c30c30c30c30c3ULL;
  v = (v | (v >> 4)) & 0x100f00f00f00f00fULL;
  v = (v | (v >> 8)) & 0x1f0000ff0000ffULL;
  v = (v | (v >> 16)) & 0x1f00000000ffffULL;
  v = (v | (v >> 32)) & 0x1fffffULL;
  return static_cast<uint32_t>(v);
}

}  // namespace dbsa::sfc
