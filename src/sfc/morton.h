// 2-D Morton (Z-order) encoding — the default linearization the paper uses
// to map raster cells into a 1-D key domain (Section 3, "Dimensionality
// Reduction").

#ifndef DBSA_SFC_MORTON_H_
#define DBSA_SFC_MORTON_H_

#include <cstdint>

namespace dbsa::sfc {

/// Spreads the low 32 bits of x so bit i moves to bit 2i.
uint64_t SpreadBits(uint32_t x);

/// Inverse of SpreadBits: collects even-position bits.
uint32_t CollectBits(uint64_t x);

/// Interleaves (x, y) into a Morton code; x occupies even bits.
inline uint64_t MortonEncode(uint32_t x, uint32_t y) {
  return SpreadBits(x) | (SpreadBits(y) << 1);
}

/// Inverse of MortonEncode.
inline void MortonDecode(uint64_t code, uint32_t* x, uint32_t* y) {
  *x = CollectBits(code);
  *y = CollectBits(code >> 1);
}

}  // namespace dbsa::sfc

#endif  // DBSA_SFC_MORTON_H_
