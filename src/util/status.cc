#include "util/status.h"

namespace dbsa {

const char* StatusCodeName(StatusCode code) {
  static_assert(kStatusCodeCount == 10,
                "new StatusCode: add its name below (the switch itself is "
                "caught by -Werror=switch-enum; this assert catches a "
                "renumbering that keeps the arity)");
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kCancelled:
      return "CANCELLED";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += msg_;
  return out;
}

}  // namespace dbsa
