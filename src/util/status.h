// Status / StatusOr: lightweight error propagation in the RocksDB / Arrow
// style. The library does not throw exceptions; fallible operations return
// Status (or StatusOr<T> when they produce a value).

#ifndef DBSA_UTIL_STATUS_H_
#define DBSA_UTIL_STATUS_H_

#include <stdexcept>
#include <string>
#include <utility>

#include "util/check.h"

namespace dbsa {

/// Codes are stable wire values (transport.h ships them as u8): append
/// only, never renumber.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kUnimplemented = 4,
  kInternal = 5,
  kDeadlineExceeded = 6,
  kCancelled = 7,
  kUnavailable = 8,
  kFailedPrecondition = 9,
};

/// Stable upper bound of the enum (wire validation).
inline constexpr StatusCode kMaxStatusCode = StatusCode::kFailedPrecondition;

/// Number of StatusCode values. Every non-switch dispatch over
/// StatusCode (name tables, wire validation) pins this with an adjacent
/// `static_assert(kStatusCodeCount == ...)`, so appending a code is a
/// compile error at each handling site instead of a silent fallthrough
/// (-Werror=switch-enum already covers the plain switches).
inline constexpr int kStatusCodeCount = 10;
static_assert(static_cast<int>(kMaxStatusCode) + 1 == kStatusCodeCount,
              "StatusCode grew: bump kStatusCodeCount, then fix every "
              "static_assert(kStatusCodeCount == ...) handling site the "
              "bump flushes out");

const char* StatusCodeName(StatusCode code);

/// Result of a fallible operation: a code plus a human-readable message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string msg_;
};

/// Exception carrier for a non-OK Status: lets status-typed failures
/// cross code that still propagates by throwing (thread-pool futures,
/// scatter-gather fan-outs) without collapsing to untyped text — the
/// catch site recovers the full Status.
class StatusException : public std::runtime_error {
 public:
  explicit StatusException(Status status)
      : std::runtime_error(status.message()), status_(std::move(status)) {
    DBSA_CHECK(!status_.ok());
  }

  const Status& status() const { return status_; }

 private:
  Status status_;
};

/// Either a value of type T or an error Status. Accessing the value of a
/// non-OK StatusOr aborts (programming error).
template <typename T>
class StatusOr {
 public:
  StatusOr(T value) : status_(Status::OK()), value_(std::move(value)) {}  // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {                 // NOLINT
    DBSA_CHECK(!status_.ok());
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    DBSA_CHECK(status_.ok());
    return value_;
  }
  T& value() & {
    DBSA_CHECK(status_.ok());
    return value_;
  }
  T&& value() && {
    DBSA_CHECK(status_.ok());
    return std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  T value_{};
};

}  // namespace dbsa

#endif  // DBSA_UTIL_STATUS_H_
