// Status / StatusOr: lightweight error propagation in the RocksDB / Arrow
// style. The library does not throw exceptions; fallible operations return
// Status (or StatusOr<T> when they produce a value).

#ifndef DBSA_UTIL_STATUS_H_
#define DBSA_UTIL_STATUS_H_

#include <string>
#include <utility>

#include "util/check.h"

namespace dbsa {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kUnimplemented = 4,
  kInternal = 5,
};

/// Result of a fallible operation: a code plus a human-readable message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string msg_;
};

/// Either a value of type T or an error Status. Accessing the value of a
/// non-OK StatusOr aborts (programming error).
template <typename T>
class StatusOr {
 public:
  StatusOr(T value) : status_(Status::OK()), value_(std::move(value)) {}  // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {                 // NOLINT
    DBSA_CHECK(!status_.ok());
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    DBSA_CHECK(status_.ok());
    return value_;
  }
  T& value() & {
    DBSA_CHECK(status_.ok());
    return value_;
  }
  T&& value() && {
    DBSA_CHECK(status_.ok());
    return std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  T value_{};
};

}  // namespace dbsa

#endif  // DBSA_UTIL_STATUS_H_
