// Wall-clock timing for the benchmark harnesses.

#ifndef DBSA_UTIL_TIMER_H_
#define DBSA_UTIL_TIMER_H_

#include <chrono>

namespace dbsa {

/// Steady-clock stopwatch. Starts on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last Reset().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  double Millis() const { return Seconds() * 1e3; }

  /// Elapsed microseconds.
  double Micros() const { return Seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace dbsa

#endif  // DBSA_UTIL_TIMER_H_
