// Compile-time race detection: Clang Thread Safety Analysis attribute
// macros, plus the annotatable synchronization wrappers the serving
// stack's lock discipline is written in.
//
// Why this exists: the concurrent layer (src/service/, src/telemetry/)
// holds the byte-identity guarantee together under mutation — LRU caches,
// the demux Op registry, admission-control depth, the listener connection
// table. TSan catches only the interleavings the tests happen to run;
// with these annotations the COMPILER rejects a program that touches a
// guarded field without its lock, on every path, every build
// (`-Wthread-safety -Werror`, the `static-analysis` CI job). See
// docs/development.md ("Static analysis gates") for how to annotate a
// new lock.
//
// On non-Clang compilers every macro expands to nothing and the wrappers
// degrade to zero-overhead shims over the std types, so g++ builds are
// unchanged. The wrappers — not bare std::mutex — are mandatory in
// src/service/ and src/telemetry/ (scripts/check_lint.sh enforces it):
// an unannotatable lock is invisible to the analysis, which is exactly
// the hole this header closes.
//
//   dbsa::Mutex      annotated exclusive capability over std::mutex
//   dbsa::MutexLock  scoped acquire/release (std::unique_lock inside)
//   dbsa::CondVar    condition variable waiting on a MutexLock; wait
//                    predicates are written as explicit while-loops in
//                    the calling function so the analysis sees the reads
//                    under the held capability (a lambda predicate is
//                    analyzed as an unannotated function and rejected)

#ifndef DBSA_UTIL_THREAD_ANNOTATIONS_H_
#define DBSA_UTIL_THREAD_ANNOTATIONS_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__) && !defined(SWIG)
#define DBSA_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define DBSA_THREAD_ANNOTATION(x)  // no-op: GCC/MSVC have no TSA
#endif

/// Declares a type to be a capability ("mutex" in diagnostics).
#define DBSA_CAPABILITY(x) DBSA_THREAD_ANNOTATION(capability(x))

/// Declares an RAII type that acquires a capability at construction and
/// releases it at destruction.
#define DBSA_SCOPED_CAPABILITY DBSA_THREAD_ANNOTATION(scoped_lockable)

/// The annotated field may only be read or written while `x` is held.
#define DBSA_GUARDED_BY(x) DBSA_THREAD_ANNOTATION(guarded_by(x))

/// The pointee of the annotated pointer is guarded by `x` (the pointer
/// itself is not).
#define DBSA_PT_GUARDED_BY(x) DBSA_THREAD_ANNOTATION(pt_guarded_by(x))

/// The function may only be called with the listed capabilities held
/// exclusively; it does not acquire or release them (the *Locked helper
/// idiom).
#define DBSA_REQUIRES(...) \
  DBSA_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Shared (reader) version of DBSA_REQUIRES.
#define DBSA_REQUIRES_SHARED(...) \
  DBSA_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// The function acquires the listed capabilities and holds them on
/// return.
#define DBSA_ACQUIRE(...) \
  DBSA_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// The function releases the listed capabilities (which must be held on
/// entry).
#define DBSA_RELEASE(...) \
  DBSA_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// The function acquires the capability iff it returns `result`.
#define DBSA_TRY_ACQUIRE(result, ...) \
  DBSA_THREAD_ANNOTATION(try_acquire_capability(result, __VA_ARGS__))

/// The function must NOT be called with the listed capabilities held
/// (deadlock documentation: e.g. a completion callback that re-enters
/// Send must not run under the demux lock).
#define DBSA_EXCLUDES(...) DBSA_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Lock-ordering declarations between capabilities.
#define DBSA_ACQUIRED_BEFORE(...) \
  DBSA_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define DBSA_ACQUIRED_AFTER(...) \
  DBSA_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// The function returns a reference to the named capability.
#define DBSA_RETURN_CAPABILITY(x) DBSA_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch — turns the analysis off for one function. Every use
/// must carry a comment saying why the invariant holds anyway.
#define DBSA_NO_THREAD_SAFETY_ANALYSIS \
  DBSA_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace dbsa {

/// Exclusive mutex the analysis can track. Same cost and semantics as
/// the std::mutex it wraps; Lock/Unlock exist for the rare manual
/// acquisition — prefer MutexLock (scoped) everywhere else.
class DBSA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() DBSA_ACQUIRE() { mu_.lock(); }
  void Unlock() DBSA_RELEASE() { mu_.unlock(); }
  bool TryLock() DBSA_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class MutexLock;
  std::mutex mu_;
};

/// Scoped lock over a Mutex: acquires at construction, releases at
/// destruction (or at an explicit early Unlock()). This is the one
/// blessed way to hold a Mutex in src/service/ and src/telemetry/.
class DBSA_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) DBSA_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~MutexLock() DBSA_RELEASE() {}  // unique_lock releases unless Unlock() ran.

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Early release, e.g. to drop the lock before a long build. The
  /// destructor then releases nothing.
  void Unlock() DBSA_RELEASE() { lock_.unlock(); }

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// Condition variable paired with Mutex/MutexLock. Waits release the
/// capability and re-acquire it before returning, which the analysis
/// models as "still held across the call" — so guarded predicate reads
/// belong in an explicit while-loop around Wait in the function that
/// holds the lock:
///
///   MutexLock lock(mu_);
///   while (queue_.empty() && !stop_) cv_.Wait(lock);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// One blocking wait (no predicate — loop in the caller, see above).
  void Wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  /// Timed wait; returns false on timeout.
  template <typename Rep, typename Period>
  bool WaitFor(MutexLock& lock,
               const std::chrono::duration<Rep, Period>& timeout) {
    return cv_.wait_for(lock.lock_, timeout) == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace dbsa

#endif  // DBSA_UTIL_THREAD_ANNOTATIONS_H_
