#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace dbsa {

void RunningStats::Add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  hist_.Record(x);
}

double RunningStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void Percentiles::AddAll(const std::vector<double>& xs) {
  xs_.insert(xs_.end(), xs.begin(), xs.end());
  sorted_ = false;
}

void Percentiles::EnsureSorted() const {
  if (!sorted_) {
    std::sort(xs_.begin(), xs_.end());
    sorted_ = true;
  }
}

double Percentiles::Percentile(double p) const {
  if (xs_.empty()) return 0.0;
  EnsureSorted();
  if (p <= 0) return xs_.front();
  if (p >= 100) return xs_.back();
  const double rank = p / 100.0 * static_cast<double>(xs_.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= xs_.size()) return xs_.back();
  return xs_[lo] * (1.0 - frac) + xs_[lo + 1] * frac;
}

std::string Percentiles::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "p50=%.4g p90=%.4g p99=%.4g max=%.4g",
                Percentile(50), Percentile(90), Percentile(99), Percentile(100));
  return buf;
}

std::string HumanBytes(size_t bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (v >= 1024.0 && u < 4) {
    v /= 1024.0;
    ++u;
  }
  char buf[64];
  if (u == 0) {
    std::snprintf(buf, sizeof(buf), "%zu B", bytes);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f %s", v, units[u]);
  }
  return buf;
}

std::string HumanCount(double n) {
  char buf[64];
  if (n >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.1fB", n / 1e9);
  } else if (n >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.1fM", n / 1e6);
  } else if (n >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1fK", n / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f", n);
  }
  return buf;
}

}  // namespace dbsa
