// Determinism-and-initialization vocabulary: the typed primitives that
// make the byte-identity contract auditable by a dumb grep.
//
// The whole system promises that, with the plan pinned, payloads are
// byte-identical on every execution path (docs/architecture.md,
// "Invariants"). Two silent ways to break that promise survive every
// runtime sanitizer:
//
//   1. NONDETERMINISTIC ITERATION — walking a std::unordered_map /
//      std::unordered_set (or a pointer-keyed map: addresses vary run to
//      run) on a path that feeds CellAggregate::Merge, a gather fold, a
//      wire encoder or MetricRegistry::RenderText. The output is correct
//      per run and different across runs — no sanitizer fires.
//   2. UNINITIALIZED PADDING — memcpy'ing a whole struct into a wire
//      buffer copies its padding bytes, which are indeterminate. The
//      frame parses fine; its bytes differ across runs (and leak stack
//      contents to the peer). MSan catches it dynamically; this header
//      makes it a compile error.
//
// scripts/check_determinism.sh enforces the discipline textually (raw
// memcpy and unordered iteration are forbidden in the audited dirs
// unless routed through this header or carrying an audited
// `dbsa-lint-allow` tag), and scripts/determinism_probe.cc proves the
// static_asserts here are live — a bad instantiation must not compile.
//
// Everything here is C++17; std::bit_cast is C++20 and memcpy through a
// size/trivially-copyable-checked template is the standard pre-20
// spelling (the single sanctioned memcpy in the audited tree).

#ifndef DBSA_UTIL_DETERMINISM_H_
#define DBSA_UTIL_DETERMINISM_H_

#include <algorithm>
#include <cstring>
#include <type_traits>
#include <utility>
#include <vector>

namespace dbsa::util {

// ------------------------------------------------- padding-free copies

/// A type whose object representation has no padding bits that could
/// carry indeterminate values onto the wire: arithmetic types and enums
/// only. Aggregates — even "obviously packed" ones — are deliberately
/// excluded: field order, alignment and therefore padding are ABI
/// details, and the wire format encodes field-wise precisely so no ABI
/// detail can reach a frame.
template <typename T>
inline constexpr bool kIsWirePrimitive =
    std::is_arithmetic_v<std::remove_cv_t<T>> ||
    std::is_enum_v<std::remove_cv_t<T>>;

/// Bit-exact reinterpretation between two padding-free types of the same
/// size (double <-> uint64_t for IEEE-754 wire travel, hashing). The
/// C++17 spelling of std::bit_cast, restricted to wire primitives so a
/// struct can never smuggle padding through it.
template <typename To, typename From>
inline To BitCast(const From& from) {
  static_assert(sizeof(To) == sizeof(From),
                "BitCast: size mismatch — this is not a conversion");
  static_assert(kIsWirePrimitive<From> && kIsWirePrimitive<To>,
                "BitCast: wire primitives only — structs have padding whose "
                "bytes are indeterminate (encode field-wise instead)");
  To to;
  std::memcpy(&to, &from, sizeof(To));  // dbsa-lint-allow(memcpy): the one blessed copy — both sides statically proven padding-free above.
  return to;
}

/// Stores one wire primitive's object representation at `dst`
/// (host-endian; the supported targets are little-endian, same
/// convention as service/transport.h). Whole-struct stores do not
/// compile — THE guarantee that a padding byte can never reach a frame.
template <typename T>
inline void StoreWire(void* dst, const T& v) {
  static_assert(kIsWirePrimitive<T>,
                "StoreWire: field-wise encode only — a whole-struct store "
                "would copy indeterminate padding bytes into the frame");
  std::memcpy(dst, &v, sizeof(T));  // dbsa-lint-allow(memcpy): source statically proven padding-free above.
}

/// Loads one wire primitive from possibly-unaligned bytes at `src`.
template <typename T>
inline T LoadWire(const void* src) {
  static_assert(kIsWirePrimitive<T>,
                "LoadWire: field-wise decode only — whole-struct loads would "
                "bless reading a frame through an ABI-dependent layout");
  T v{};
  std::memcpy(&v, src, sizeof(T));  // dbsa-lint-allow(memcpy): destination statically proven padding-free above.
  return v;
}

// ------------------------------------------- deterministic iteration

namespace internal {
template <typename C, typename = void>
struct HasHasher : std::false_type {};
/// Every std::unordered_* container (and any hash container modeled on
/// them) exposes a `hasher` member type; the ordered associative
/// containers do not.
template <typename C>
struct HasHasher<C, std::void_t<typename C::hasher>> : std::true_type {};
}  // namespace internal

/// True for hash-ordered containers, whose iteration order depends on
/// hash seeding, insertion history and rehash points — never on the
/// keys alone.
template <typename C>
inline constexpr bool kIsHashOrdered =
    internal::HasHasher<std::remove_cv_t<std::remove_reference_t<C>>>::value;

/// Compile-time gate for generic code that iterates a container into a
/// merge, an encoder or a render: instantiating this on an unordered
/// container is a build failure (proven live by determinism_probe.cc).
template <typename C>
constexpr void RequireOrderedIteration() {
  static_assert(!kIsHashOrdered<C>,
                "deterministic path: iterating a hash-ordered container "
                "here would make the output depend on hash seeding — take "
                "a SortedKeys/SortedItems snapshot instead");
}

/// The blessed way to walk an unordered set-like container on a
/// deterministic path: a sorted snapshot of its keys. O(n log n) and an
/// extra copy — deliberately paid, because the alternative is output
/// bytes that depend on the hash seed.
template <typename C>
std::vector<typename C::key_type> SortedKeys(const C& container) {
  std::vector<typename C::key_type> keys;
  keys.reserve(container.size());
  for (const auto& entry : container) {
    if constexpr (std::is_same_v<typename C::value_type,
                                 typename C::key_type>) {
      keys.push_back(entry);
    } else {
      keys.push_back(entry.first);
    }
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

/// The blessed way to walk an unordered map on a deterministic path:
/// a (key, value) snapshot sorted by key.
template <typename C>
std::vector<std::pair<typename C::key_type, typename C::mapped_type>>
SortedItems(const C& container) {
  std::vector<std::pair<typename C::key_type, typename C::mapped_type>> items;
  items.reserve(container.size());
  for (const auto& [key, value] : container) items.emplace_back(key, value);
  std::sort(items.begin(), items.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return items;
}

}  // namespace dbsa::util

#endif  // DBSA_UTIL_DETERMINISM_H_
