// Streaming statistics and percentile summaries used by benches and the
// approximation-quality reports.

#ifndef DBSA_UTIL_STATS_H_
#define DBSA_UTIL_STATS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "telemetry/histogram.h"

namespace dbsa {

/// Welford one-pass mean / variance accumulator, with a bucketed
/// quantile view (telemetry::HistogramData) so streaming consumers get
/// percentiles in O(1) memory. Quantile() is bucket-interpolated (error
/// bounded by the log2 bucket width); use Percentiles when samples are
/// retained and exact order statistics matter.
class RunningStats {
 public:
  void Add(double x);

  size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

  /// p in [0, 100]; bucket-interpolated from the histogram view.
  double Quantile(double p) const { return hist_.Quantile(p); }
  const telemetry::HistogramData& histogram() const { return hist_; }

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
  telemetry::HistogramData hist_;
};

/// Exact percentile summary: stores all samples (fine at bench scales).
class Percentiles {
 public:
  void Add(double x) { xs_.push_back(x); }
  void AddAll(const std::vector<double>& xs);

  size_t count() const { return xs_.size(); }

  /// p in [0, 100]. Linear interpolation between order statistics.
  double Percentile(double p) const;
  double Median() const { return Percentile(50.0); }

  /// "p50=... p90=... p99=... max=..."
  std::string Summary() const;

 private:
  mutable std::vector<double> xs_;
  mutable bool sorted_ = false;
  void EnsureSorted() const;
};

/// Pretty-print a byte count ("143.2 MB").
std::string HumanBytes(size_t bytes);

/// Pretty-print a count ("1.2B", "39.2K").
std::string HumanCount(double n);

}  // namespace dbsa

#endif  // DBSA_UTIL_STATS_H_
