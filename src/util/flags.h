// Minimal --name=value flag access for the repo's process entry points
// (shard_server_main, examples). One definition so every binary in a
// cluster parses flags identically — the socket walkthrough depends on
// client and servers agreeing on dataset flags byte for byte.
// (bench/bench_util.h has a separate richer parser for bench-only
// conveniences; these are the deployment-facing ones.)

#ifndef DBSA_UTIL_FLAGS_H_
#define DBSA_UTIL_FLAGS_H_

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <initializer_list>
#include <string>

namespace dbsa::util {

/// True iff --name=value is present; *out receives the value.
inline bool FlagValue(int argc, char** argv, const char* name,
                      std::string* out) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      *out = argv[i] + prefix.size();
      return true;
    }
  }
  return false;
}

/// --name=value as a double; `fallback` when absent. A value that does
/// not parse fully as a number is a fatal usage error (exit 2): these
/// flags feed the cross-process dataset contract, and a silently
/// swallowed typo would surface much later as an inexplicable payload
/// divergence between client and servers.
inline double NumFlag(int argc, char** argv, const char* name,
                      double fallback) {
  std::string value;
  if (!FlagValue(argc, argv, name, &value)) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(value.c_str(), &end);
  if (value.empty() || end != value.c_str() + value.size() ||
      !std::isfinite(parsed)) {
    std::fprintf(stderr, "error: --%s=%s is not a finite number\n", name,
                 value.c_str());
    std::exit(2);
  }
  return parsed;
}

/// --name=value as a non-negative integer; `fallback` when absent.
/// Digits only: a sign, decimal point, or out-of-range value is a fatal
/// usage error (exit 2) — casting an unchecked double to an unsigned
/// type (e.g. --points=-1) would be undefined behavior, surfacing as an
/// OOM or a silent cross-process dataset divergence.
inline unsigned long long UintFlag(int argc, char** argv, const char* name,
                                   unsigned long long fallback) {
  std::string value;
  if (!FlagValue(argc, argv, name, &value)) return fallback;
  unsigned long long parsed = 0;
  bool ok = !value.empty();
  for (const char c : value) {
    if (c < '0' || c > '9' || parsed > (~0ull - 9) / 10) {
      ok = false;
      break;
    }
    parsed = parsed * 10 + static_cast<unsigned long long>(c - '0');
  }
  if (!ok) {
    std::fprintf(stderr, "error: --%s=%s is not a non-negative integer\n",
                 name, value.c_str());
    std::exit(2);
  }
  return parsed;
}

/// True iff every --flag argument names a flag in `known`; prints each
/// unknown flag to stderr otherwise. Entry points call this first so a
/// typo'd flag (--ponits=...) is rejected instead of silently ignored —
/// a dropped dataset flag breaks the flags-must-match cluster contract.
inline bool KnownFlagsOnly(int argc, char** argv,
                           std::initializer_list<const char*> known) {
  bool ok = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) != 0) continue;
    const char* body = argv[i] + 2;
    const char* eq = std::strchr(body, '=');
    const std::string name(
        body, eq != nullptr ? static_cast<size_t>(eq - body) : std::strlen(body));
    bool matched = false;
    for (const char* k : known) {
      if (name == k) {
        matched = true;
        break;
      }
    }
    if (!matched) {
      std::fprintf(stderr, "error: unknown flag --%s\n", name.c_str());
      ok = false;
    } else if (eq == nullptr) {
      // All of these flags take values and FlagValue only matches the
      // --name=value form, so "--points 5000" would pass here and then
      // silently fall back to the default — the exact divergence this
      // helper exists to prevent.
      std::fprintf(stderr, "error: flag --%s needs a value (--%s=...)\n",
                   name.c_str(), name.c_str());
      ok = false;
    }
  }
  return ok;
}

}  // namespace dbsa::util

#endif  // DBSA_UTIL_FLAGS_H_
