// Deterministic, fast pseudo-random generation (xoshiro256++) used by the
// data generators and the property tests. Seeded explicitly everywhere so
// experiments are reproducible.

#ifndef DBSA_UTIL_RANDOM_H_
#define DBSA_UTIL_RANDOM_H_

#include <cmath>
#include <cstdint>

namespace dbsa {

/// xoshiro256++ PRNG with SplitMix64 seeding.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    uint64_t x = seed;
    for (auto& si : s_) si = SplitMix64(&x);
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double Uniform() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t Below(uint64_t n) { return Next() % n; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t Range(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Below(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Standard normal via Box-Muller.
  double Gaussian() {
    double u1 = Uniform();
    double u2 = Uniform();
    if (u1 < 1e-300) u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) { return mean + stddev * Gaussian(); }

  /// True with probability p.
  bool Bernoulli(double p) { return Uniform() < p; }

 private:
  static uint64_t SplitMix64(uint64_t* x) {
    uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t s_[4];
};

}  // namespace dbsa

#endif  // DBSA_UTIL_RANDOM_H_
