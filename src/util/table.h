// Aligned-column table printer for the benchmark harnesses. Every figure /
// table bench prints its series through this so outputs are uniform and
// easy to diff against the paper.

#ifndef DBSA_UTIL_TABLE_H_
#define DBSA_UTIL_TABLE_H_

#include <cstdio>
#include <string>
#include <vector>

namespace dbsa {

/// Collects rows of strings and prints them with aligned columns.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends a row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  /// Formats a double with %.*g.
  static std::string Num(double v, int precision = 5);

  /// Prints the table (header, separator, rows) to the stream.
  void Print(std::FILE* out = stdout) const;

  /// Prints the table as CSV (for scripted consumption).
  void PrintCsv(std::FILE* out) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a section banner ("==== title ====") for bench output.
void PrintBanner(const std::string& title);

/// Prints an indented note line.
void PrintNote(const std::string& text);

}  // namespace dbsa

#endif  // DBSA_UTIL_TABLE_H_
