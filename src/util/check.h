// Invariant-checking macros. DBSA_CHECK is always on (used for API
// contract violations); DBSA_DCHECK compiles out in NDEBUG builds.

#ifndef DBSA_UTIL_CHECK_H_
#define DBSA_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace dbsa::internal {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "DBSA_CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace dbsa::internal

#define DBSA_CHECK(expr)                                        \
  do {                                                          \
    if (!(expr)) {                                              \
      ::dbsa::internal::CheckFailed(#expr, __FILE__, __LINE__); \
    }                                                           \
  } while (0)

#ifdef NDEBUG
#define DBSA_DCHECK(expr) \
  do {                    \
  } while (0)
#else
#define DBSA_DCHECK(expr) DBSA_CHECK(expr)
#endif

#endif  // DBSA_UTIL_CHECK_H_
