// Error-free floating-point transformations: Knuth's TwoSum, Dekker's
// fast two-sum, and the TwoDouble compensated pair built from them. A
// TwoDouble represents a sum as an unevaluated pair hi + lo where the
// pair carries (up to) twice the significand of one double. Accumulating
// through these transformations keeps partial sums EXACT whenever the
// running value fits the ~106-bit pair window, which is what makes the
// sharded SUM gather byte-identical to the unsharded engine for
// arbitrary (non-dyadic) attribute columns — the rounding that used to
// depend on association order never happens (see the merge-identity
// contract in core/sharded_state.h).
//
// None of this survives -ffast-math; the build does not use it.

#ifndef DBSA_UTIL_COMPENSATED_H_
#define DBSA_UTIL_COMPENSATED_H_

namespace dbsa {

/// Unevaluated sum of two doubles. Normalized after every operation
/// below: hi is the double nearest the represented value, |lo| <= ulp(hi)/2.
struct TwoDouble {
  double hi = 0.0;
  double lo = 0.0;

  /// The nearest single double to the represented value.
  double Rounded() const { return hi + lo; }
};

/// Knuth TwoSum: a + b == s.hi + s.lo exactly, for any a, b.
inline TwoDouble TwoSum(double a, double b) {
  const double s = a + b;
  const double bb = s - a;
  return {s, (a - (s - bb)) + (b - bb)};
}

/// Dekker fast two-sum; requires |a| >= |b| (or a == 0).
inline TwoDouble QuickTwoSum(double a, double b) {
  const double s = a + b;
  return {s, b - (s - a)};
}

/// pair + double (error-free while the value fits the pair window).
inline TwoDouble AddDouble(const TwoDouble& a, double b) {
  TwoDouble s = TwoSum(a.hi, b);
  s.lo += a.lo;
  return QuickTwoSum(s.hi, s.lo);
}

/// pair + pair (the accurate double-double addition).
inline TwoDouble AddPair(const TwoDouble& a, const TwoDouble& b) {
  TwoDouble s = TwoSum(a.hi, b.hi);
  const TwoDouble t = TwoSum(a.lo, b.lo);
  s.lo += t.hi;
  s = QuickTwoSum(s.hi, s.lo);
  s.lo += t.lo;
  return QuickTwoSum(s.hi, s.lo);
}

/// pair - pair.
inline TwoDouble SubPair(const TwoDouble& a, const TwoDouble& b) {
  return AddPair(a, {-b.hi, -b.lo});
}

}  // namespace dbsa

#endif  // DBSA_UTIL_COMPENSATED_H_
