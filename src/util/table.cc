#include "util/table.h"

#include <algorithm>

#include "util/check.h"

namespace dbsa {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> row) {
  DBSA_CHECK(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
  return buf;
}

void TablePrinter::Print(std::FILE* out) const {
  std::vector<size_t> width(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      std::fprintf(out, "%s%-*s", c == 0 ? "  " : "  | ",
                   static_cast<int>(width[c]), row[c].c_str());
    }
    std::fprintf(out, "\n");
  };
  print_row(header_);
  size_t total = 2;
  for (size_t c = 0; c < width.size(); ++c) total += width[c] + (c == 0 ? 0 : 4);
  std::string sep(total, '-');
  std::fprintf(out, "  %s\n", sep.c_str() + 2);
  for (const auto& row : rows_) print_row(row);
}

void TablePrinter::PrintCsv(std::FILE* out) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      std::fprintf(out, "%s%s", c == 0 ? "" : ",", row[c].c_str());
    }
    std::fprintf(out, "\n");
  };
  print_row(header_);
  for (const auto& row : rows_) print_row(row);
}

void PrintBanner(const std::string& title) {
  std::string bar(title.size() + 10, '=');
  std::printf("\n%s\n==== %s ====\n%s\n", bar.c_str(), title.c_str(), bar.c_str());
}

void PrintNote(const std::string& text) { std::printf("  %s\n", text.c_str()); }

}  // namespace dbsa
