#include "raster/voxel.h"

#include <algorithm>

#include "sfc/morton3.h"
#include "util/check.h"

namespace dbsa::raster {

Sdf SphereSdf(Point3 center, double radius) {
  return [center, radius](const Point3& p) { return (p - center).Norm() - radius; };
}

Sdf BoxSdf(Point3 min, Point3 max) {
  return [min, max](const Point3& p) {
    const double dx = std::max({min.x - p.x, 0.0, p.x - max.x});
    const double dy = std::max({min.y - p.y, 0.0, p.y - max.y});
    const double dz = std::max({min.z - p.z, 0.0, p.z - max.z});
    const double outside = std::sqrt(dx * dx + dy * dy + dz * dz);
    if (outside > 0.0) return outside;
    // Inside: negative distance to the nearest face.
    const double inside =
        std::min({p.x - min.x, max.x - p.x, p.y - min.y, max.y - p.y, p.z - min.z,
                  max.z - p.z});
    return -inside;
  };
}

Sdf CapsuleSdf(Point3 a, Point3 b, double radius) {
  return [a, b, radius](const Point3& p) {
    const Point3 ab = b - a;
    const Point3 ap = p - a;
    const double len2 = ab.x * ab.x + ab.y * ab.y + ab.z * ab.z;
    double t = len2 > 0 ? (ap.x * ab.x + ap.y * ab.y + ap.z * ab.z) / len2 : 0.0;
    t = std::clamp(t, 0.0, 1.0);
    const Point3 closest{a.x + ab.x * t, a.y + ab.y * t, a.z + ab.z * t};
    return (p - closest).Norm() - radius;
  };
}

Sdf UnionSdf(Sdf a, Sdf b) {
  return [a = std::move(a), b = std::move(b)](const Point3& p) {
    return std::min(a(p), b(p));
  };
}

Sdf IntersectSdf(Sdf a, Sdf b) {
  return [a = std::move(a), b = std::move(b)](const Point3& p) {
    return std::max(a(p), b(p));
  };
}

VoxelRaster VoxelRaster::Build(const Sdf& solid, Point3 origin, double side,
                               double epsilon, int max_level) {
  DBSA_CHECK(epsilon > 0.0 && side > 0.0);
  VoxelRaster vr;
  vr.origin_ = origin;
  vr.side_ = side;
  // Voxel diagonal sqrt(3)*s <= epsilon.
  const double ratio = side * kSqrt3 / epsilon;
  vr.level_ = std::clamp(
      static_cast<int>(std::ceil(std::log2(std::max(ratio, 1.0)))), 0, max_level);

  const uint32_t n = 1u << vr.level_;
  const double vs = vr.VoxelSize();
  const double half_diag = 0.5 * vs * kSqrt3;
  for (uint32_t z = 0; z < n; ++z) {
    for (uint32_t y = 0; y < n; ++y) {
      for (uint32_t x = 0; x < n; ++x) {
        const Point3 center{origin.x + (x + 0.5) * vs, origin.y + (y + 0.5) * vs,
                            origin.z + (z + 0.5) * vs};
        const double d = solid(center);
        if (d <= -half_diag) {
          vr.interior_.push_back(sfc::Morton3Encode(x, y, z));
        } else if (d < half_diag) {
          // Within half a diagonal of the surface: the voxel may touch
          // the solid; keep it as a (conservative) boundary voxel.
          vr.boundary_.push_back(sfc::Morton3Encode(x, y, z));
        }
      }
    }
  }
  std::sort(vr.interior_.begin(), vr.interior_.end());
  std::sort(vr.boundary_.begin(), vr.boundary_.end());
  return vr;
}

uint64_t VoxelRaster::VoxelKey(const Point3& p) const {
  const double n = static_cast<double>(1u << level_);
  const double max_idx = n - 1.0;
  const auto clamp_idx = [max_idx](double v) {
    return static_cast<uint32_t>(std::clamp(std::floor(v), 0.0, max_idx));
  };
  const uint32_t x = clamp_idx((p.x - origin_.x) / side_ * n);
  const uint32_t y = clamp_idx((p.y - origin_.y) / side_ * n);
  const uint32_t z = clamp_idx((p.z - origin_.z) / side_ * n);
  return sfc::Morton3Encode(x, y, z);
}

CellKind VoxelRaster::Classify(const Point3& p) const {
  const uint64_t key = VoxelKey(p);
  if (std::binary_search(interior_.begin(), interior_.end(), key)) {
    return CellKind::kInterior;
  }
  if (std::binary_search(boundary_.begin(), boundary_.end(), key)) {
    return CellKind::kBoundary;
  }
  return CellKind::kOutside;
}

}  // namespace dbsa::raster
