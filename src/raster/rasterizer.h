// Scanline polygon rasterization with interior/boundary classification —
// the software equivalent of the GPU rasterization the paper leverages to
// compute fine-grained approximations on the fly (Section 1, "Hardware
// Trends"). Produces the cell sets that UniformRaster / HierarchicalRaster
// wrap.

#ifndef DBSA_RASTER_RASTERIZER_H_
#define DBSA_RASTER_RASTERIZER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "geom/polygon.h"
#include "raster/grid.h"

namespace dbsa::raster {

/// Options controlling boundary-cell treatment (Section 2.2).
struct RasterOptions {
  /// Conservative rasters keep every cell touching the boundary: only
  /// false positives are possible. Non-conservative rasters drop boundary
  /// cells whose coverage fraction is below min_coverage, admitting false
  /// negatives as well (both stay within the distance bound).
  bool conservative = true;

  /// Only used when conservative == false; in [0, 1].
  double min_coverage = 0.5;
};

/// The uniform-grid footprint of one polygon at a fixed level: Morton
/// codes (at that level) of interior cells and of boundary cells, each
/// sorted ascending. Interior and boundary sets are disjoint.
struct CellCover {
  int level = 0;
  std::vector<uint64_t> interior;
  std::vector<uint64_t> boundary;

  size_t TotalCells() const { return interior.size() + boundary.size(); }
};

/// Rasterizes a polygon onto the grid at `level`.
CellCover RasterizePolygon(const geom::Polygon& poly, const Grid& grid, int level,
                           const RasterOptions& opts = RasterOptions());

/// Visits every cell (ix, iy) at `level` crossed by segment (a, b) —
/// supercover grid traversal (Amanatides-Woo with corner handling).
void TraverseSegment(const geom::Point& a, const geom::Point& b, const Grid& grid,
                     int level, const std::function<void(uint32_t, uint32_t)>& visit);

}  // namespace dbsa::raster

#endif  // DBSA_RASTER_RASTERIZER_H_
