#include "raster/uniform_raster.h"

#include <algorithm>

namespace dbsa::raster {

UniformRaster UniformRaster::Build(const geom::Polygon& poly, const Grid& grid,
                                   double epsilon, const RasterOptions& opts) {
  return BuildAtLevel(poly, grid, grid.LevelForEpsilon(epsilon), opts);
}

UniformRaster UniformRaster::BuildAtLevel(const geom::Polygon& poly, const Grid& grid,
                                          int level, const RasterOptions& opts) {
  UniformRaster ur;
  ur.cover_ = RasterizePolygon(poly, grid, level, opts);
  return ur;
}

CellKind UniformRaster::Classify(const geom::Point& p, const Grid& grid) const {
  uint32_t ix = 0, iy = 0;
  grid.PointToXY(p, cover_.level, &ix, &iy);
  const uint64_t m = sfc::MortonEncode(ix, iy);
  if (std::binary_search(cover_.interior.begin(), cover_.interior.end(), m)) {
    return CellKind::kInterior;
  }
  if (std::binary_search(cover_.boundary.begin(), cover_.boundary.end(), m)) {
    return CellKind::kBoundary;
  }
  return CellKind::kOutside;
}

}  // namespace dbsa::raster
