#include "raster/verify.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>

#include "geom/distance.h"

namespace dbsa::raster {

namespace {

// Max distance from the cell box to the polygon, probed at corners and
// center (distance-to-solid-region; 0 inside).
double CellMaxDistToPolygon(const geom::Polygon& poly, const geom::Box& box) {
  const geom::Point probes[5] = {box.min,
                                 {box.max.x, box.min.y},
                                 box.max,
                                 {box.min.x, box.max.y},
                                 box.Center()};
  double worst = 0.0;
  for (const geom::Point& p : probes) {
    worst = std::max(worst, geom::DistanceToPolygon(p, poly));
  }
  return worst;
}

// Distance from p to the nearest included cell, searched over growing
// Chebyshev rings of finest-level cells around p. classify() answers
// whether a point is covered by the approximation.
double DistToNearestIncluded(const geom::Point& p, const Grid& grid,
                             const std::function<CellKind(const geom::Point&)>& classify,
                             int probe_level, double give_up_dist) {
  const double cs = grid.CellSize(probe_level);
  uint32_t cx = 0, cy = 0;
  grid.PointToXY(p, probe_level, &cx, &cy);
  // Hard cap: beyond ~1K rings the answer is "far" (returns infinity).
  const int max_r =
      std::min(static_cast<int>(std::ceil(give_up_dist / cs)) + 2, 1024);
  const int64_t n = grid.CellsPerSide(probe_level);
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r <= max_r; ++r) {
    // Once a hit exists, cells in farther rings cannot improve below
    // (r-1)*cs; stop when that exceeds the best found.
    if (best < static_cast<double>(r - 1) * cs) break;
    for (int64_t dx = -r; dx <= r; ++dx) {
      for (int64_t dy = -r; dy <= r; ++dy) {
        if (std::max(std::llabs(dx), std::llabs(dy)) != r) continue;
        const int64_t ix = static_cast<int64_t>(cx) + dx;
        const int64_t iy = static_cast<int64_t>(cy) + dy;
        if (ix < 0 || iy < 0 || ix >= n || iy >= n) continue;
        const geom::Box cell = grid.CellBoxXY(probe_level, static_cast<uint32_t>(ix),
                                              static_cast<uint32_t>(iy));
        if (classify(cell.Center()) != CellKind::kOutside) {
          best = std::min(best, cell.Distance(p));
        }
      }
    }
  }
  return best;
}

template <typename Raster>
BoundCheck CheckImpl(const geom::Polygon& poly, const Grid& grid, const Raster& raster,
                     double sample_step, int boundary_level,
                     const std::function<void(const std::function<void(
                         const geom::Box&)>&)>& for_each_cell_box) {
  BoundCheck check;

  // False-positive side: every included cell must stay within the bound.
  for_each_cell_box([&](const geom::Box& box) {
    check.max_false_positive_dist =
        std::max(check.max_false_positive_dist, CellMaxDistToPolygon(poly, box));
  });

  // False-negative side: sampled polygon boundary points not covered by the
  // approximation measure the g -> g' Hausdorff direction.
  auto classify = [&](const geom::Point& p) { return raster.Classify(p, grid); };
  const double give_up = grid.CellDiagonal(boundary_level) * 4.0 + sample_step;
  auto probe = [&](const geom::Point& p) {
    if (classify(p) == CellKind::kOutside) {
      check.covers_polygon = false;
      const double d = DistToNearestIncluded(p, grid, classify, boundary_level, give_up);
      if (std::isfinite(d)) {
        check.max_false_negative_dist = std::max(check.max_false_negative_dist, d);
      }
    }
  };
  auto sample_ring = [&](const geom::Ring& ring) {
    const size_t n = ring.size();
    for (size_t i = 0; i < n; ++i) {
      const geom::Point& a = ring[i];
      const geom::Point& b = ring[(i + 1 == n) ? 0 : i + 1];
      probe(a);
      const double len = geom::Distance(a, b);
      const int k = static_cast<int>(std::ceil(len / sample_step));
      for (int j = 1; j < k; ++j) {
        probe(a + (b - a) * (static_cast<double>(j) / k));
      }
    }
  };
  sample_ring(poly.outer());
  for (const geom::Ring& h : poly.holes()) sample_ring(h);
  return check;
}

}  // namespace

BoundCheck CheckBound(const geom::Polygon& poly, const Grid& grid,
                      const UniformRaster& ur, double sample_step) {
  const int level = ur.level();
  return CheckImpl(
      poly, grid, ur, sample_step, level,
      [&](const std::function<void(const geom::Box&)>& fn) {
        auto visit = [&](const std::vector<uint64_t>& cells) {
          for (const uint64_t m : cells) {
            uint32_t ix = 0, iy = 0;
            sfc::MortonDecode(m, &ix, &iy);
            fn(grid.CellBoxXY(level, ix, iy));
          }
        };
        visit(ur.cover().interior);
        visit(ur.cover().boundary);
      });
}

BoundCheck CheckBound(const geom::Polygon& poly, const Grid& grid,
                      const HierarchicalRaster& hr, double sample_step) {
  if (hr.cells().empty()) {
    // Degenerate approximation (e.g. non-conservative raster of a sliver
    // thinner than the coverage threshold): nothing is covered.
    BoundCheck check;
    check.covers_polygon = false;
    check.max_false_negative_dist = std::numeric_limits<double>::infinity();
    return check;
  }
  // Probe the neighbourhood at the coarsest boundary-cell level (or the
  // coarsest cell at all, for boundary-free rasters) so the ring scan in
  // DistToNearestIncluded stays proportionate.
  int boundary_level = CellId::kMaxLevel;
  bool any_boundary = false;
  int coarsest = CellId::kMaxLevel;
  for (const HrCell& c : hr.cells()) {
    coarsest = std::min(coarsest, c.id.level());
    if (c.boundary) {
      boundary_level = std::min(boundary_level, c.id.level());
      any_boundary = true;
    }
  }
  if (!any_boundary) boundary_level = coarsest;
  return CheckImpl(poly, grid, hr, sample_step, boundary_level,
                   [&](const std::function<void(const geom::Box&)>& fn) {
                     for (const HrCell& c : hr.cells()) fn(grid.CellBox(c.id));
                   });
}

}  // namespace dbsa::raster
