// The mapping between the continuous universe and the hierarchical cell
// grid, including the paper's distance-bound rule: a raster whose boundary
// cells have side epsilon/sqrt(2) (diagonal = epsilon) epsilon-approximates
// the geometry (Section 2.2).

#ifndef DBSA_RASTER_GRID_H_
#define DBSA_RASTER_GRID_H_

#include <cstdint>

#include "geom/box.h"
#include "geom/point.h"
#include "raster/cell_id.h"

namespace dbsa::raster {

/// A square universe subdivided by a quadtree down to CellId::kMaxLevel.
class Grid {
 public:
  /// The universe square is [origin, origin + side]^2. All indexed data
  /// must fall inside it.
  Grid(geom::Point origin, double side);

  /// Convenience: the smallest square grid covering `bounds` (with a small
  /// margin so boundary coordinates stay strictly inside).
  static Grid Covering(const geom::Box& bounds);

  const geom::Point& origin() const { return origin_; }
  double side() const { return side_; }
  geom::Box universe() const {
    return geom::Box(origin_, {origin_.x + side_, origin_.y + side_});
  }

  /// Cell side length at a level.
  double CellSize(int level) const { return side_ / static_cast<double>(1u << level); }

  /// Cell diagonal at a level (the Hausdorff contribution of one cell).
  double CellDiagonal(int level) const { return CellSize(level) * kSqrt2; }

  /// Smallest level whose cell diagonal is <= epsilon, i.e. the raster
  /// level that guarantees d_H <= epsilon per the paper. Guaranteed:
  /// AchievedEpsilon(LevelForEpsilon(eps)) <= eps unless the level was
  /// clamped to kMaxLevel (the only case where a request can be finer than
  /// the grid provides); use AchievedEpsilon to see what a level gives.
  int LevelForEpsilon(double epsilon) const;

  /// The distance bound actually guaranteed at a level (= cell diagonal).
  double AchievedEpsilon(int level) const { return CellDiagonal(level); }

  /// Number of cells per side at a level.
  uint32_t CellsPerSide(int level) const { return 1u << level; }

  /// Grid coordinates of the cell containing p at a level (clamped to the
  /// universe).
  void PointToXY(const geom::Point& p, int level, uint32_t* ix, uint32_t* iy) const;

  /// Cell id of the cell containing p at a level.
  CellId PointToCell(const geom::Point& p, int level) const {
    uint32_t ix = 0, iy = 0;
    PointToXY(p, level, &ix, &iy);
    return CellId::FromXY(level, ix, iy);
  }

  /// Finest-level Morton key of p — the 1-D linearization of Section 3.
  uint64_t LeafKey(const geom::Point& p) const {
    uint32_t ix = 0, iy = 0;
    PointToXY(p, CellId::kMaxLevel, &ix, &iy);
    return sfc::MortonEncode(ix, iy);
  }

  /// Geometric box of a cell.
  geom::Box CellBox(const CellId& cell) const;
  geom::Box CellBoxXY(int level, uint32_t ix, uint32_t iy) const;

 private:
  static constexpr double kSqrt2 = 1.4142135623730951;

  geom::Point origin_;
  double side_;
};

}  // namespace dbsa::raster

#endif  // DBSA_RASTER_GRID_H_
