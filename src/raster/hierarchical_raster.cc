#include "raster/hierarchical_raster.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

#include "raster/rasterizer.h"

#include "geom/polygon_ops.h"

namespace dbsa::raster {

HierarchicalRaster HierarchicalRaster::BuildEpsilon(const geom::Polygon& poly,
                                                    const Grid& grid, double epsilon,
                                                    const RasterOptions& opts) {
  // Estimate the finest-level footprint; the bottom-up path materializes
  // every interior cell, so switch to top-down when that would be large.
  const int level = grid.LevelForEpsilon(epsilon);
  const double cs = grid.CellSize(level);
  const double bbox_cells = (poly.bounds().Width() / cs) * (poly.bounds().Height() / cs);
  // The bottom-up scanline materializes every finest-level interior cell
  // (O(area)); top-down only touches descendants of boundary cells
  // (O(perimeter)). The crossover sits around tens of thousands of cells.
  if (bbox_cells > 32768.0) {
    return BuildEpsilonTopDown(poly, grid, epsilon, opts);
  }
  return BuildEpsilonBottomUp(poly, grid, epsilon, opts);
}

HierarchicalRaster HierarchicalRaster::BuildLevel(const geom::Polygon& poly,
                                                  const Grid& grid, int level,
                                                  const RasterOptions& opts) {
  // AchievedEpsilon(level) is exactly the cell diagonal, so LevelForEpsilon
  // maps it back to `level` and both construction paths see the same level.
  return BuildEpsilon(poly, grid, grid.AchievedEpsilon(level), opts);
}

HierarchicalRaster HierarchicalRaster::BuildEpsilonBottomUp(const geom::Polygon& poly,
                                                            const Grid& grid,
                                                            double epsilon,
                                                            const RasterOptions& opts) {
  const int level = grid.LevelForEpsilon(epsilon);
  const CellCover cover = RasterizePolygon(poly, grid, level, opts);

  std::vector<HrCell> out;
  out.reserve(cover.boundary.size() + cover.interior.size() / 2);
  for (const uint64_t m : cover.boundary) {
    out.push_back({CellId::FromLevelPrefix(level, m), /*boundary=*/true});
  }

  // Bottom-up merge of interior cells: whenever all four children of a
  // parent are interior, replace them by the parent. Interior cells are
  // error-free regardless of size (Section 2.2).
  std::vector<uint64_t> cur = cover.interior;  // Already sorted.
  for (int l = level; l > 0 && !cur.empty(); --l) {
    std::vector<uint64_t> promoted;
    size_t i = 0;
    const size_t n = cur.size();
    while (i < n) {
      if (i + 3 < n && (cur[i] >> 2) == (cur[i + 3] >> 2)) {
        // Sorted and distinct: four entries sharing a parent are exactly
        // the four children.
        promoted.push_back(cur[i] >> 2);
        i += 4;
      } else {
        out.push_back({CellId::FromLevelPrefix(l, cur[i]), /*boundary=*/false});
        ++i;
      }
    }
    cur = std::move(promoted);
  }
  if (!cur.empty()) {
    // Merged all the way to a single level-0 cell (whole universe).
    for (const uint64_t m : cur) {
      out.push_back({CellId::FromLevelPrefix(0, m), /*boundary=*/false});
    }
  }

  HierarchicalRaster hr;
  hr.FinalizeFrom(std::move(out));
  return hr;
}

HierarchicalRaster HierarchicalRaster::BuildEpsilonTopDown(const geom::Polygon& poly,
                                                           const Grid& grid,
                                                           double epsilon,
                                                           const RasterOptions& opts) {
  const int max_level = grid.LevelForEpsilon(epsilon);

  // Start at the smallest cell containing the polygon's bounding box.
  const uint64_t lo = grid.LeafKey(poly.bounds().min);
  const uint64_t hi = grid.LeafKey(poly.bounds().max);
  int start_level = 0;
  for (int l = CellId::kMaxLevel; l >= 0; --l) {
    const int shift = 2 * (CellId::kMaxLevel - l);
    if ((lo >> shift) == (hi >> shift)) {
      start_level = l;
      break;
    }
  }
  start_level = std::min(start_level, max_level);

  // Per-level boundary cells (prefix -> present), from edge supercover.
  // Total work is O(perimeter / finest cell size), independent of area.
  std::vector<std::unordered_set<uint64_t>> boundary_by_level(
      static_cast<size_t>(max_level + 1));
  for (int l = start_level; l <= max_level; ++l) {
    auto& set = boundary_by_level[static_cast<size_t>(l)];
    poly.ForEachEdge([&](const geom::Point& a, const geom::Point& b) {
      TraverseSegment(a, b, grid, l, [&](uint32_t ix, uint32_t iy) {
        set.insert(sfc::MortonEncode(ix, iy));
      });
    });
  }

  std::vector<HrCell> out;
  // Iterative DFS over descendants of boundary cells.
  std::vector<std::pair<int, uint64_t>> stack;  // (level, morton prefix).
  stack.push_back({start_level,
                   lo >> (2 * (CellId::kMaxLevel - start_level))});
  while (!stack.empty()) {
    const auto [l, prefix] = stack.back();
    stack.pop_back();
    const bool is_boundary = boundary_by_level[static_cast<size_t>(l)].count(prefix) > 0;
    if (!is_boundary) {
      // Off-boundary cell: homogeneous; its center decides.
      uint32_t ix, iy;
      sfc::MortonDecode(prefix, &ix, &iy);
      if (poly.Contains(grid.CellBoxXY(l, ix, iy).Center())) {
        out.push_back({CellId::FromLevelPrefix(l, prefix), /*boundary=*/false});
      }
      continue;
    }
    if (l == max_level) {
      if (!opts.conservative) {
        uint32_t ix, iy;
        sfc::MortonDecode(prefix, &ix, &iy);
        if (geom::BoxCoverageFraction(poly, grid.CellBoxXY(l, ix, iy)) <
            opts.min_coverage) {
          continue;
        }
      }
      out.push_back({CellId::FromLevelPrefix(l, prefix), /*boundary=*/true});
      continue;
    }
    for (uint64_t child = 0; child < 4; ++child) {
      stack.push_back({l + 1, (prefix << 2) | child});
    }
  }

  HierarchicalRaster hr;
  hr.FinalizeFrom(std::move(out));
  return hr;
}

HierarchicalRaster HierarchicalRaster::BuildBudget(const geom::Polygon& poly,
                                                   const Grid& grid, size_t max_cells,
                                                   const RasterOptions& opts) {
  // Start at the smallest cell containing the polygon's bounding box.
  const uint64_t lo = grid.LeafKey(poly.bounds().min);
  const uint64_t hi = grid.LeafKey(poly.bounds().max);
  int start_level = 0;
  for (int l = CellId::kMaxLevel; l >= 0; --l) {
    const int shift = 2 * (CellId::kMaxLevel - l);
    if ((lo >> shift) == (hi >> shift)) {
      start_level = l;
      break;
    }
  }

  std::deque<CellId> queue;
  queue.push_back(CellId::FromLevelPrefix(
      start_level, lo >> (2 * (CellId::kMaxLevel - start_level))));

  std::vector<HrCell> out;
  while (!queue.empty()) {
    const CellId cell = queue.front();
    queue.pop_front();
    const geom::Box box = grid.CellBox(cell);
    const geom::BoxRelation rel = geom::ClassifyBox(poly, box);
    if (rel == geom::BoxRelation::kOutside) continue;
    if (rel == geom::BoxRelation::kInside) {
      out.push_back({cell, /*boundary=*/false});
      continue;
    }
    // Boundary cell: refine breadth-first while the budget allows (a split
    // nets at most +3 cells).
    const size_t current_total = out.size() + queue.size() + 1;
    if (cell.level() < CellId::kMaxLevel && current_total + 3 <= max_cells) {
      for (int i = 0; i < 4; ++i) queue.push_back(cell.Child(i));
    } else {
      if (!opts.conservative &&
          geom::BoxCoverageFraction(poly, box) < opts.min_coverage) {
        continue;
      }
      out.push_back({cell, /*boundary=*/true});
    }
  }

  HierarchicalRaster hr;
  hr.FinalizeFrom(std::move(out));
  return hr;
}

void HierarchicalRaster::FinalizeFrom(std::vector<HrCell> cells) {
  std::sort(cells.begin(), cells.end(),
            [](const HrCell& a, const HrCell& b) { return a.id < b.id; });
  cells_ = std::move(cells);
  range_lo_.resize(cells_.size());
  range_hi_.resize(cells_.size());
  for (size_t i = 0; i < cells_.size(); ++i) {
    range_lo_[i] = cells_[i].id.LeafKeyMin();
    range_hi_[i] = cells_[i].id.LeafKeyMax();
  }
}

size_t HierarchicalRaster::NumBoundaryCells() const {
  size_t n = 0;
  for (const HrCell& c : cells_) n += c.boundary ? 1 : 0;
  return n;
}

double HierarchicalRaster::AchievedEpsilon(const Grid& grid) const {
  int coarsest_boundary = CellId::kMaxLevel;
  bool any = false;
  for (const HrCell& c : cells_) {
    if (c.boundary) {
      coarsest_boundary = std::min(coarsest_boundary, c.id.level());
      any = true;
    }
  }
  return any ? grid.CellDiagonal(coarsest_boundary) : 0.0;
}

CellKind HierarchicalRaster::Classify(const geom::Point& p, const Grid& grid) const {
  if (cells_.empty()) return CellKind::kOutside;
  const uint64_t key = grid.LeafKey(p);
  // Cells are disjoint and sorted by id, which sorts range_lo ascending.
  const auto it = std::upper_bound(range_lo_.begin(), range_lo_.end(), key);
  if (it == range_lo_.begin()) return CellKind::kOutside;
  const size_t idx = static_cast<size_t>(it - range_lo_.begin()) - 1;
  if (key > range_hi_[idx]) return CellKind::kOutside;
  return cells_[idx].boundary ? CellKind::kBoundary : CellKind::kInterior;
}

size_t HierarchicalRaster::MemoryBytes() const {
  return cells_.size() * (sizeof(HrCell) + 2 * sizeof(uint64_t));
}

}  // namespace dbsa::raster
