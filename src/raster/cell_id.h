// 64-bit hierarchical cell identifiers over a quadtree decomposition of a
// square universe, in the style of S2 cell ids: the Morton prefix of the
// cell is followed by a single sentinel 1-bit that encodes the level. This
// gives three properties the indexing layer relies on (Section 3):
//
//   * ids of all levels live in one integer domain,
//   * the descendants of a cell form one contiguous leaf-key range, and
//   * parent/child navigation is bit arithmetic.

#ifndef DBSA_RASTER_CELL_ID_H_
#define DBSA_RASTER_CELL_ID_H_

#include <cstdint>
#include <string>

#include "sfc/morton.h"
#include "util/check.h"

namespace dbsa::raster {

/// A hierarchical raster cell. Level 0 is the whole universe; level
/// kMaxLevel is the finest grid (2^24 x 2^24 cells).
class CellId {
 public:
  static constexpr int kMaxLevel = 24;

  CellId() : id_(0) {}
  explicit CellId(uint64_t id) : id_(id) {}

  /// Builds a cell from its level and Morton prefix (2*level bits).
  static CellId FromLevelPrefix(int level, uint64_t prefix) {
    DBSA_DCHECK(level >= 0 && level <= kMaxLevel);
    const int shift = 2 * (kMaxLevel - level);
    return CellId((prefix << (shift + 1)) | (1ULL << shift));
  }

  /// Builds a cell from grid coordinates at the given level.
  static CellId FromXY(int level, uint32_t ix, uint32_t iy) {
    return FromLevelPrefix(level, sfc::MortonEncode(ix, iy));
  }

  /// Cell containing the given finest-level (leaf) Morton key.
  static CellId FromLeafKey(uint64_t leaf_key) {
    return FromLevelPrefix(kMaxLevel, leaf_key);
  }

  uint64_t id() const { return id_; }
  bool IsValid() const { return id_ != 0; }

  /// Number of quadtree subdivisions from the root.
  int level() const {
    DBSA_DCHECK(IsValid());
    return kMaxLevel - (__builtin_ctzll(id_) >> 1);
  }

  /// Morton prefix (2*level bits).
  uint64_t prefix() const { return id_ >> (__builtin_ctzll(id_) + 1); }

  /// Grid coordinates of this cell at its own level.
  void ToXY(uint32_t* ix, uint32_t* iy) const { sfc::MortonDecode(prefix(), ix, iy); }

  /// Ancestor at the given (coarser) level.
  CellId Parent(int parent_level) const {
    DBSA_DCHECK(parent_level >= 0 && parent_level <= level());
    return FromLevelPrefix(parent_level, prefix() >> (2 * (level() - parent_level)));
  }
  CellId Parent() const { return Parent(level() - 1); }

  /// Child i (0..3) one level finer.
  CellId Child(int i) const {
    DBSA_DCHECK(i >= 0 && i < 4 && level() < kMaxLevel);
    return FromLevelPrefix(level() + 1, (prefix() << 2) | static_cast<uint64_t>(i));
  }

  /// First leaf-level Morton key covered by this cell.
  uint64_t LeafKeyMin() const { return prefix() << (2 * (kMaxLevel - level())); }

  /// Last leaf-level Morton key covered by this cell (inclusive).
  uint64_t LeafKeyMax() const {
    const int shift = 2 * (kMaxLevel - level());
    return (prefix() << shift) | ((shift == 0) ? 0 : ((1ULL << shift) - 1));
  }

  /// True iff `other` is equal to or a descendant of this cell.
  bool Covers(const CellId& other) const {
    return other.LeafKeyMin() >= LeafKeyMin() && other.LeafKeyMax() <= LeafKeyMax();
  }

  bool operator==(const CellId& o) const { return id_ == o.id_; }
  bool operator!=(const CellId& o) const { return id_ != o.id_; }
  /// Orders cells along the Z-curve; ancestors sort within the span of
  /// their descendants.
  bool operator<(const CellId& o) const { return id_ < o.id_; }

  /// Debug string "L12:(x,y)".
  std::string ToString() const;

 private:
  uint64_t id_;
};

}  // namespace dbsa::raster

#endif  // DBSA_RASTER_CELL_ID_H_
