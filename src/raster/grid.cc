#include "raster/grid.h"

#include <algorithm>
#include <cmath>

namespace dbsa::raster {

Grid::Grid(geom::Point origin, double side) : origin_(origin), side_(side) {
  DBSA_CHECK(side > 0.0);
}

Grid Grid::Covering(const geom::Box& bounds) {
  DBSA_CHECK(!bounds.IsEmpty());
  const double side = std::max(bounds.Width(), bounds.Height());
  const double margin = std::max(side, 1e-9) * 1e-6;
  return Grid({bounds.min.x - margin, bounds.min.y - margin},
              std::max(side, 1e-9) * (1.0 + 2e-6));
}

int Grid::LevelForEpsilon(double epsilon) const {
  DBSA_CHECK(epsilon > 0.0);
  // Smallest L with side / 2^L * sqrt(2) <= epsilon.
  const double ratio = side_ * kSqrt2 / epsilon;
  int level = static_cast<int>(std::ceil(std::log2(std::max(ratio, 1.0))));
  level = std::clamp(level, 0, CellId::kMaxLevel);
  // ceil(log2(ratio)) is computed in floating point: when the ratio sits at
  // (or within one ulp of) an exact power of two, the rounded logarithm can
  // land one level off in either direction — too coarse violates the
  // requested distance bound, too fine wastes cells. Snap to the smallest
  // level whose guarantee actually covers the request; only the kMaxLevel
  // clamp may leave AchievedEpsilon(level) above epsilon.
  while (level > 0 && AchievedEpsilon(level - 1) <= epsilon) --level;
  while (level < CellId::kMaxLevel && AchievedEpsilon(level) > epsilon) ++level;
  return level;
}

void Grid::PointToXY(const geom::Point& p, int level, uint32_t* ix, uint32_t* iy) const {
  const double cells = static_cast<double>(1u << level);
  const double fx = (p.x - origin_.x) / side_ * cells;
  const double fy = (p.y - origin_.y) / side_ * cells;
  const double max_idx = cells - 1.0;
  *ix = static_cast<uint32_t>(std::clamp(std::floor(fx), 0.0, max_idx));
  *iy = static_cast<uint32_t>(std::clamp(std::floor(fy), 0.0, max_idx));
}

geom::Box Grid::CellBox(const CellId& cell) const {
  uint32_t ix = 0, iy = 0;
  cell.ToXY(&ix, &iy);
  return CellBoxXY(cell.level(), ix, iy);
}

geom::Box Grid::CellBoxXY(int level, uint32_t ix, uint32_t iy) const {
  const double cs = CellSize(level);
  const double x0 = origin_.x + cs * static_cast<double>(ix);
  const double y0 = origin_.y + cs * static_cast<double>(iy);
  return geom::Box(x0, y0, x0 + cs, y0 + cs);
}

}  // namespace dbsa::raster
