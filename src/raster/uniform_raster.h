// Uniform Raster (UR) approximation — Figure 1(b) of the paper: a polygon
// represented by equi-sized cells at a single grid level, chosen so the
// cell diagonal is at most the requested distance bound epsilon.

#ifndef DBSA_RASTER_UNIFORM_RASTER_H_
#define DBSA_RASTER_UNIFORM_RASTER_H_

#include "raster/rasterizer.h"

namespace dbsa::raster {

/// Classification of a point against a raster approximation.
enum class CellKind {
  kOutside = 0,
  kBoundary = 1,  ///< In a cell overlapping the polygon boundary.
  kInterior = 2,  ///< In a cell fully inside the polygon.
};

/// An epsilon-bounded uniform raster approximation of one polygon.
class UniformRaster {
 public:
  /// Builds with the level implied by epsilon (d_H(g, g') <= epsilon).
  static UniformRaster Build(const geom::Polygon& poly, const Grid& grid,
                             double epsilon, const RasterOptions& opts = {});

  /// Builds at an explicit level.
  static UniformRaster BuildAtLevel(const geom::Polygon& poly, const Grid& grid,
                                    int level, const RasterOptions& opts = {});

  int level() const { return cover_.level; }
  const CellCover& cover() const { return cover_; }
  size_t NumCells() const { return cover_.TotalCells(); }

  /// Distance bound this raster actually guarantees.
  double AchievedEpsilon(const Grid& grid) const {
    return grid.AchievedEpsilon(cover_.level);
  }

  /// Classifies a point (binary search over the sorted cell sets).
  CellKind Classify(const geom::Point& p, const Grid& grid) const;

  /// The approximate containment answer: true for interior or boundary
  /// cells. No exact geometric test is performed.
  bool ApproxContains(const geom::Point& p, const Grid& grid) const {
    return Classify(p, grid) != CellKind::kOutside;
  }

  /// Footprint in bytes (cells are 8-byte Morton codes).
  size_t MemoryBytes() const { return cover_.TotalCells() * sizeof(uint64_t); }

 private:
  CellCover cover_;
};

}  // namespace dbsa::raster

#endif  // DBSA_RASTER_UNIFORM_RASTER_H_
