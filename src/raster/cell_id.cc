#include "raster/cell_id.h"

#include <cstdio>

namespace dbsa::raster {

std::string CellId::ToString() const {
  if (!IsValid()) return "invalid";
  uint32_t ix = 0, iy = 0;
  ToXY(&ix, &iy);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "L%d:(%u,%u)", level(), ix, iy);
  return buf;
}

}  // namespace dbsa::raster
