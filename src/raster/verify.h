// Distance-bound verification: measures how far an approximation's errors
// can be from the exact geometry. Used by the property tests and the
// accuracy columns of the benches to demonstrate the paper's guarantee
// d_H(g, g') <= epsilon.

#ifndef DBSA_RASTER_VERIFY_H_
#define DBSA_RASTER_VERIFY_H_

#include "raster/hierarchical_raster.h"
#include "raster/uniform_raster.h"

namespace dbsa::raster {

/// Measured error bounds of a raster approximation.
struct BoundCheck {
  /// Max distance from any point of an included cell to the polygon
  /// (sup over cell corners/centers) — bounds how far false positives are.
  double max_false_positive_dist = 0.0;
  /// Max distance from a sampled polygon point that is NOT covered by the
  /// approximation to the polygon boundary — bounds how far false
  /// negatives are (non-conservative mode only; 0 when fully covered).
  double max_false_negative_dist = 0.0;
  /// True iff the approximation covers every sampled polygon point
  /// (expected for conservative rasters).
  bool covers_polygon = true;
};

/// Checks a uniform raster against the source polygon. sample_step controls
/// the boundary/interior sampling density.
BoundCheck CheckBound(const geom::Polygon& poly, const Grid& grid,
                      const UniformRaster& ur, double sample_step);

/// Checks a hierarchical raster against the source polygon.
BoundCheck CheckBound(const geom::Polygon& poly, const Grid& grid,
                      const HierarchicalRaster& hr, double sample_step);

}  // namespace dbsa::raster

#endif  // DBSA_RASTER_VERIFY_H_
