// Hierarchical Raster (HR) approximation — Figure 1(c): boundary cells at
// the fine epsilon level, interior cells merged into the largest quadtree
// cells that still fit (they contribute no approximation error). Two
// construction modes, both used by the paper:
//
//   * epsilon-driven (Section 5.1: ACT with a 4 m bound),
//   * cell-budget-driven (Section 3: 32/128/512 cells per query polygon).

#ifndef DBSA_RASTER_HIERARCHICAL_RASTER_H_
#define DBSA_RASTER_HIERARCHICAL_RASTER_H_

#include <vector>

#include "raster/uniform_raster.h"

namespace dbsa::raster {

/// One variable-level cell of an HR approximation.
struct HrCell {
  CellId id;
  bool boundary = false;
};

/// A hierarchical (variable cell size) raster approximation of a polygon.
/// Cells are non-overlapping and sorted by id (Z-order).
class HierarchicalRaster {
 public:
  /// Epsilon-driven: boundary cells at LevelForEpsilon(epsilon), interior
  /// cells as large as possible. Chooses between the bottom-up scanline
  /// construction (fast for small footprints) and the top-down refinement
  /// (memory-bounded for huge ones) automatically.
  static HierarchicalRaster BuildEpsilon(const geom::Polygon& poly, const Grid& grid,
                                         double epsilon,
                                         const RasterOptions& opts = {});

  /// Bottom-up scanline construction: rasterize at the epsilon level and
  /// merge interior cells. Cost grows with the polygon's area in finest
  /// cells.
  static HierarchicalRaster BuildEpsilonBottomUp(const geom::Polygon& poly,
                                                 const Grid& grid, double epsilon,
                                                 const RasterOptions& opts = {});

  /// Top-down refinement: per-level supercover boundary detection plus
  /// center tests for off-boundary children. Cost grows only with the
  /// polygon's perimeter in finest cells, independent of area.
  static HierarchicalRaster BuildEpsilonTopDown(const geom::Polygon& poly,
                                                const Grid& grid, double epsilon,
                                                const RasterOptions& opts = {});

  /// Epsilon-driven at an explicit boundary level. Equivalent to
  /// BuildEpsilon with epsilon = grid.AchievedEpsilon(level); the natural
  /// entry point for caches keyed by (polygon, level), where every epsilon
  /// mapping to the same level must produce the identical structure.
  static HierarchicalRaster BuildLevel(const geom::Polygon& poly, const Grid& grid,
                                       int level, const RasterOptions& opts = {});

  /// Budget-driven: top-down refinement until at most max_cells cells.
  /// The achieved epsilon is the diagonal of the largest boundary cell.
  static HierarchicalRaster BuildBudget(const geom::Polygon& poly, const Grid& grid,
                                        size_t max_cells,
                                        const RasterOptions& opts = {});

  const std::vector<HrCell>& cells() const { return cells_; }
  size_t NumCells() const { return cells_.size(); }
  size_t NumBoundaryCells() const;

  /// Diagonal of the largest boundary cell = the guaranteed bound.
  double AchievedEpsilon(const Grid& grid) const;

  /// Point classification via binary search on disjoint leaf-key ranges.
  CellKind Classify(const geom::Point& p, const Grid& grid) const;
  bool ApproxContains(const geom::Point& p, const Grid& grid) const {
    return Classify(p, grid) != CellKind::kOutside;
  }

  /// 8 bytes per cell id plus range/flag arrays.
  size_t MemoryBytes() const;

 private:
  void FinalizeFrom(std::vector<HrCell> cells);

  std::vector<HrCell> cells_;
  // Parallel lookup arrays: inclusive leaf-key ranges per cell.
  std::vector<uint64_t> range_lo_;
  std::vector<uint64_t> range_hi_;
};

}  // namespace dbsa::raster

#endif  // DBSA_RASTER_HIERARCHICAL_RASTER_H_
