#include "raster/rasterizer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_set>

#include "geom/polygon_ops.h"

namespace dbsa::raster {

namespace {

inline uint64_t PackXY(uint32_t ix, uint32_t iy) {
  return (static_cast<uint64_t>(iy) << 32) | ix;
}

}  // namespace

void TraverseSegment(const geom::Point& a, const geom::Point& b, const Grid& grid,
                     int level, const std::function<void(uint32_t, uint32_t)>& visit) {
  const double cs = grid.CellSize(level);
  const double inv = 1.0 / cs;
  // Segment endpoints in cell coordinates.
  const double ax = (a.x - grid.origin().x) * inv;
  const double ay = (a.y - grid.origin().y) * inv;
  const double bx = (b.x - grid.origin().x) * inv;
  const double by = (b.y - grid.origin().y) * inv;

  const double max_idx = static_cast<double>(grid.CellsPerSide(level) - 1);
  auto clamp_idx = [max_idx](double v) {
    return static_cast<int64_t>(std::clamp(std::floor(v), 0.0, max_idx));
  };

  int64_t ix = clamp_idx(ax);
  int64_t iy = clamp_idx(ay);
  const int64_t jx = clamp_idx(bx);
  const int64_t jy = clamp_idx(by);

  const double dx = bx - ax;
  const double dy = by - ay;
  const int64_t step_x = (dx > 0) ? 1 : ((dx < 0) ? -1 : 0);
  const int64_t step_y = (dy > 0) ? 1 : ((dy < 0) ? -1 : 0);

  constexpr double kInf = std::numeric_limits<double>::infinity();
  const double t_delta_x = (step_x != 0) ? std::fabs(1.0 / dx) : kInf;
  const double t_delta_y = (step_y != 0) ? std::fabs(1.0 / dy) : kInf;

  double t_max_x = kInf;
  if (step_x > 0) {
    t_max_x = (static_cast<double>(ix + 1) - ax) / dx;
  } else if (step_x < 0) {
    t_max_x = (static_cast<double>(ix) - ax) / dx;
  }
  double t_max_y = kInf;
  if (step_y > 0) {
    t_max_y = (static_cast<double>(iy + 1) - ay) / dy;
  } else if (step_y < 0) {
    t_max_y = (static_cast<double>(iy) - ay) / dy;
  }

  // Upper bound on steps: the L1 cell distance plus slack for corner cases.
  int64_t guard = std::llabs(jx - ix) + std::llabs(jy - iy) + 4;
  visit(static_cast<uint32_t>(ix), static_cast<uint32_t>(iy));
  while ((ix != jx || iy != jy) && guard-- > 0) {
    if (t_max_x < t_max_y) {
      ix += step_x;
      t_max_x += t_delta_x;
    } else if (t_max_y < t_max_x) {
      iy += step_y;
      t_max_y += t_delta_y;
    } else {
      // Exact corner crossing: include both side cells (supercover), then
      // step diagonally.
      if (ix + step_x >= 0 && ix + step_x <= static_cast<int64_t>(max_idx)) {
        visit(static_cast<uint32_t>(ix + step_x), static_cast<uint32_t>(iy));
      }
      if (iy + step_y >= 0 && iy + step_y <= static_cast<int64_t>(max_idx)) {
        visit(static_cast<uint32_t>(ix), static_cast<uint32_t>(iy + step_y));
      }
      ix += step_x;
      iy += step_y;
      t_max_x += t_delta_x;
      t_max_y += t_delta_y;
      guard -= 1;
    }
    ix = std::clamp<int64_t>(ix, 0, static_cast<int64_t>(max_idx));
    iy = std::clamp<int64_t>(iy, 0, static_cast<int64_t>(max_idx));
    visit(static_cast<uint32_t>(ix), static_cast<uint32_t>(iy));
  }
}

CellCover RasterizePolygon(const geom::Polygon& poly, const Grid& grid, int level,
                           const RasterOptions& opts) {
  CellCover cover;
  cover.level = level;
  if (poly.outer().size() < 3) return cover;

  // Pass 1: boundary cells via supercover traversal of every edge.
  std::unordered_set<uint64_t> boundary_set;
  poly.ForEachEdge([&](const geom::Point& a, const geom::Point& b) {
    TraverseSegment(a, b, grid, level,
                    [&](uint32_t ix, uint32_t iy) { boundary_set.insert(PackXY(ix, iy)); });
  });

  // Pass 2: interior cells via scanline parity at cell-center rows.
  const double cs = grid.CellSize(level);
  uint32_t bx0, by0, bx1, by1;
  grid.PointToXY(poly.bounds().min, level, &bx0, &by0);
  grid.PointToXY(poly.bounds().max, level, &bx1, &by1);

  std::vector<double> xs;
  for (uint32_t iy = by0; iy <= by1; ++iy) {
    const double y = grid.origin().y + (static_cast<double>(iy) + 0.5) * cs;
    xs.clear();
    poly.ForEachEdge([&](const geom::Point& a, const geom::Point& b) {
      if ((a.y > y) != (b.y > y)) {
        xs.push_back(a.x + (y - a.y) / (b.y - a.y) * (b.x - a.x));
      }
    });
    if (xs.size() < 2) continue;
    std::sort(xs.begin(), xs.end());
    for (size_t k = 0; k + 1 < xs.size(); k += 2) {
      // Cells whose center x lies in (xs[k], xs[k+1]).
      const double fx0 = (xs[k] - grid.origin().x) / cs - 0.5;
      const double fx1 = (xs[k + 1] - grid.origin().x) / cs - 0.5;
      int64_t lo = static_cast<int64_t>(std::ceil(fx0));
      int64_t hi = static_cast<int64_t>(std::floor(fx1));
      lo = std::max<int64_t>(lo, bx0);
      hi = std::min<int64_t>(hi, bx1);
      for (int64_t ix = lo; ix <= hi; ++ix) {
        const uint64_t key = PackXY(static_cast<uint32_t>(ix), iy);
        if (!boundary_set.count(key)) {
          cover.interior.push_back(
              sfc::MortonEncode(static_cast<uint32_t>(ix), iy));
        }
      }
    }
  }

  // Boundary filtering (non-conservative mode drops low-coverage cells).
  cover.boundary.reserve(boundary_set.size());
  // dbsa-lint-allow(determinism): membership-filter walk — the result is
  // sorted below before anything downstream can observe an order.
  for (const uint64_t key : boundary_set) {
    const uint32_t ix = static_cast<uint32_t>(key & 0xffffffffu);
    const uint32_t iy = static_cast<uint32_t>(key >> 32);
    if (!opts.conservative) {
      const geom::Box cell_box = grid.CellBoxXY(level, ix, iy);
      if (geom::BoxCoverageFraction(poly, cell_box) < opts.min_coverage) continue;
    }
    cover.boundary.push_back(sfc::MortonEncode(ix, iy));
  }

  std::sort(cover.interior.begin(), cover.interior.end());
  std::sort(cover.boundary.begin(), cover.boundary.end());
  return cover;
}

}  // namespace dbsa::raster
