// 3-D distance-bounded voxel rasters — the paper's Section 6 claim that
// "the proposed distance-bounded approximation can be directly extended
// to support 3D primitives", made concrete. Solids are given as signed
// distance fields (negative inside); the voxelizer classifies each voxel
// against the bound: |sdf(center)| <= half the voxel diagonal makes a
// voxel a boundary voxel, guaranteeing d_H(solid, voxels) <= epsilon at
// voxel diagonal epsilon — the same rule as the 2-D rasters.

#ifndef DBSA_RASTER_VOXEL_H_
#define DBSA_RASTER_VOXEL_H_

#include <cmath>
#include <cstdint>
#include <functional>
#include <vector>

#include "raster/uniform_raster.h"

namespace dbsa::raster {

/// A 3-D point.
struct Point3 {
  double x = 0.0, y = 0.0, z = 0.0;

  Point3 operator-(const Point3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  double Norm() const { return std::sqrt(x * x + y * y + z * z); }
};

/// Signed distance function: negative inside the solid, positive outside,
/// magnitude = Euclidean distance to the surface.
using Sdf = std::function<double(const Point3&)>;

/// Common solids for queries over trajectories / airspace / LiDAR-style
/// 3-D data.
Sdf SphereSdf(Point3 center, double radius);
Sdf BoxSdf(Point3 min, Point3 max);
/// Capsule: all points within `radius` of segment (a, b) — e.g. a flight
/// corridor.
Sdf CapsuleSdf(Point3 a, Point3 b, double radius);
/// CSG union / intersection of two solids.
Sdf UnionSdf(Sdf a, Sdf b);
Sdf IntersectSdf(Sdf a, Sdf b);

/// An epsilon-bounded uniform voxel approximation of an SDF solid within
/// a cubic universe.
class VoxelRaster {
 public:
  /// Builds at the resolution implied by epsilon (voxel diagonal <=
  /// epsilon), clamped to max_level (2^max_level voxels per axis).
  static VoxelRaster Build(const Sdf& solid, Point3 origin, double side,
                           double epsilon, int max_level = 10);

  int level() const { return level_; }
  double VoxelSize() const { return side_ / static_cast<double>(1u << level_); }
  double AchievedEpsilon() const { return VoxelSize() * kSqrt3; }

  size_t NumInterior() const { return interior_.size(); }
  size_t NumBoundary() const { return boundary_.size(); }
  size_t MemoryBytes() const {
    return (interior_.size() + boundary_.size()) * sizeof(uint64_t);
  }

  /// Classification via sorted 3-D Morton codes.
  CellKind Classify(const Point3& p) const;
  bool ApproxContains(const Point3& p) const {
    return Classify(p) != CellKind::kOutside;
  }

 private:
  static constexpr double kSqrt3 = 1.7320508075688772;

  uint64_t VoxelKey(const Point3& p) const;

  Point3 origin_;
  double side_ = 1.0;
  int level_ = 0;
  std::vector<uint64_t> interior_;  ///< Sorted Morton3 codes.
  std::vector<uint64_t> boundary_;
};

}  // namespace dbsa::raster

#endif  // DBSA_RASTER_VOXEL_H_
