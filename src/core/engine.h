// SpatialEngine: the library's single-session façade. Register a point
// table and a region table once, then run distance-bounded aggregation
// queries; the engine approximates the regions within the requested
// epsilon, picks an execution plan (Section 4's optimizer) and answers
// without exact geometric tests — or exactly, when epsilon == 0.
// Conservative runs also return the Section 6 result ranges.
//
// The engine itself is a thin, NOT thread-safe wrapper that stages tables
// and lazily freezes them into an immutable core::EngineState (see
// engine_state.h). Snapshot() exposes that state for sharing — the
// concurrent serving layer in src/service/ runs many queries against one
// snapshot from a thread pool.

#ifndef DBSA_CORE_ENGINE_H_
#define DBSA_CORE_ENGINE_H_

#include <memory>
#include <vector>

#include "core/engine_state.h"

namespace dbsa::core {

class SpatialEngine {
 public:
  SpatialEngine();
  ~SpatialEngine();

  /// Registers the point table (moved in; never copied again afterwards).
  void SetPoints(data::PointSet points);

  /// Registers the region table (moved in; never copied again afterwards).
  void SetRegions(data::RegionSet regions);

  /// The frozen, shareable build products for the current registration.
  /// Builds them on first use; invalidated by SetPoints / SetRegions.
  /// Thread-safe to *use* (see engine_state.h), not to obtain.
  std::shared_ptr<const EngineState> Snapshot();

  /// SELECT AGG(attr) FROM P, R WHERE P.loc INSIDE R.geometry GROUP BY R.id
  /// with distance bound epsilon (0 = exact).
  AggregateAnswer Aggregate(join::AggKind agg, Attr attr, double epsilon,
                            Mode mode = Mode::kAuto);

  /// One-shot: COUNT points inside an ad-hoc query polygon with a result
  /// range (conservative HR + point index).
  join::ResultRange CountInPolygon(const geom::Polygon& poly, double epsilon);

  /// Approximate SELECTION: ids of the points inside an ad-hoc query
  /// polygon, within the distance bound (conservative: every point truly
  /// inside is returned; extras are within epsilon of the boundary).
  std::vector<uint32_t> SelectInPolygon(const geom::Polygon& poly, double epsilon);

  const data::PointSet& points() const { return *points_; }
  const data::RegionSet& regions() const { return *regions_; }
  /// Requires a snapshot (any query, or Snapshot(), builds one).
  const raster::Grid& grid() const;

 private:
  std::shared_ptr<const data::PointSet> points_;
  std::shared_ptr<const data::RegionSet> regions_;
  std::shared_ptr<const EngineState> state_;  ///< Null while dirty.
};

}  // namespace dbsa::core

#endif  // DBSA_CORE_ENGINE_H_
