// SpatialEngine: the library's public façade. Register a point table and
// a region table once, then run distance-bounded aggregation queries; the
// engine approximates the regions within the requested epsilon, picks an
// execution plan (Section 4's optimizer) and answers without exact
// geometric tests — or exactly, when epsilon == 0. Conservative runs also
// return the Section 6 result ranges.

#ifndef DBSA_CORE_ENGINE_H_
#define DBSA_CORE_ENGINE_H_

#include <memory>
#include <optional>
#include <string>

#include "data/dataset.h"
#include "join/act_join.h"
#include "join/point_index_join.h"
#include "join/result_range.h"
#include "query/optimizer.h"

namespace dbsa::core {

/// Per-region answer of an aggregation query.
struct AggregateRow {
  uint32_t region = 0;
  double value = 0.0;
  /// Guaranteed range (conservative plans only; lo == hi == value
  /// otherwise).
  double lo = 0.0;
  double hi = 0.0;
};

/// Execution report of one query.
struct ExecStats {
  query::PlanKind plan = query::PlanKind::kExactRStar;
  std::string explain;
  double elapsed_ms = 0.0;
  double achieved_epsilon = 0.0;
  size_t pip_tests = 0;
  size_t index_bytes = 0;
};

struct AggregateAnswer {
  std::vector<AggregateRow> rows;
  ExecStats stats;
};

/// Which attribute of the point table to aggregate.
enum class Attr { kNone, kFare, kPassengers };

/// Execution-mode override (kAuto defers to the optimizer).
enum class Mode { kAuto, kAct, kPointIndex, kCanvasBrj, kExact };

/// The engine. Not thread-safe; one instance per session.
class SpatialEngine {
 public:
  SpatialEngine();
  ~SpatialEngine();

  /// Registers the point table (copied).
  void SetPoints(data::PointSet points);

  /// Registers the region table (copied).
  void SetRegions(data::RegionSet regions);

  /// SELECT AGG(attr) FROM P, R WHERE P.loc INSIDE R.geometry GROUP BY R.id
  /// with distance bound epsilon (0 = exact).
  AggregateAnswer Aggregate(join::AggKind agg, Attr attr, double epsilon,
                            Mode mode = Mode::kAuto);

  /// One-shot: COUNT points inside an ad-hoc query polygon with a result
  /// range (conservative HR + point index).
  join::ResultRange CountInPolygon(const geom::Polygon& poly, double epsilon);

  /// Approximate SELECTION: ids of the points inside an ad-hoc query
  /// polygon, within the distance bound (conservative: every point truly
  /// inside is returned; extras are within epsilon of the boundary).
  std::vector<uint32_t> SelectInPolygon(const geom::Polygon& poly, double epsilon);

  const data::PointSet& points() const { return points_; }
  const data::RegionSet& regions() const { return regions_; }
  const raster::Grid& grid() const;

 private:
  struct Impl;

  const double* AttrColumn(Attr attr);
  join::JoinInput MakeInput(Attr attr);
  void EnsurePointIndex();

  data::PointSet points_;
  data::RegionSet regions_;
  std::vector<double> passengers_as_double_;
  std::unique_ptr<Impl> impl_;
};

}  // namespace dbsa::core

#endif  // DBSA_CORE_ENGINE_H_
