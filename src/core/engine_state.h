// The engine's immutable build products, split out of the SpatialEngine
// façade so they can be shared: one EngineState holds the registered
// tables, the covering grid and the linearized point index, and NOTHING in
// it mutates after BuildEngineState returns. Any number of threads may
// execute queries against the same state concurrently through the
// Execute* functions below — all per-query scratch lives on the caller's
// stack. The service layer (src/service/) shares states behind
// shared_ptr snapshots and injects caching / intra-query parallelism via
// ExecHooks.

#ifndef DBSA_CORE_ENGINE_STATE_H_
#define DBSA_CORE_ENGINE_STATE_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "join/exact_join.h"
#include "join/point_index_join.h"
#include "join/result_range.h"
#include "query/error_bound.h"
#include "query/optimizer.h"
#include "telemetry/trace.h"

namespace dbsa::core {

/// Per-region answer of an aggregation query.
struct AggregateRow {
  uint32_t region = 0;
  double value = 0.0;
  /// Guaranteed range (conservative plans only; lo == hi == value
  /// otherwise).
  double lo = 0.0;
  double hi = 0.0;
};

/// Execution report of one query.
struct ExecStats {
  query::PlanKind plan = query::PlanKind::kExactRStar;
  std::string explain;
  double elapsed_ms = 0.0;
  double achieved_epsilon = 0.0;
  /// Hierarchical-raster level actually served (-1: no raster was
  /// involved — exact plans, canvas plans).
  int hr_level = -1;
  /// Approximation cells probed. Sharded executions count each cell once
  /// per shard slice it was routed to (honest scatter accounting), so the
  /// number may exceed the unsharded cell count for the same query.
  size_t query_cells = 0;
  size_t pip_tests = 0;
  size_t index_bytes = 0;
  size_t hr_cache_hits = 0;    ///< Approximations served from a cache.
  size_t hr_cache_misses = 0;  ///< Approximations built by this query.
  /// Sharded execution only: distinct shards that survived pruning for at
  /// least one query polygon (0 = the unsharded path ran).
  size_t shards_probed = 0;
};

struct AggregateAnswer {
  std::vector<AggregateRow> rows;
  ExecStats stats;
};

/// Answers of the ad-hoc polygon queries under the v2 envelope: payload
/// plus the execution report the serving layer turns into the achieved
/// side of the distance-bound contract (service::Result::bound).
struct CountAnswer {
  join::ResultRange range;
  ExecStats stats;
};

struct SelectAnswer {
  std::vector<uint32_t> ids;
  ExecStats stats;
};

/// Which attribute of the point table to aggregate.
enum class Attr { kNone, kFare, kPassengers };

/// Execution-mode override (kAuto defers to the optimizer).
enum class Mode { kAuto, kAct, kPointIndex, kCanvasBrj, kExact };

/// Immutable snapshot of one (points, regions) registration: the tables
/// themselves plus every shared build product. Construct only through
/// BuildEngineState; treat as frozen afterwards.
struct EngineState {
  std::shared_ptr<const data::PointSet> points;
  std::shared_ptr<const data::RegionSet> regions;
  /// Widened passenger column, materialized once per state (the seed
  /// engine recomputed it on every SetPoints call).
  std::vector<double> passengers_as_double;
  raster::Grid grid{geom::Point{0.0, 0.0}, 1.0};
  /// Built eagerly so concurrent queries never race on lazy construction.
  std::optional<join::PointIndex> point_index;

  const double* AttrColumn(Attr attr) const;
  join::JoinInput MakeInput(Attr attr) const;
};

/// Builds the shared products (covering grid, point index, attribute
/// columns) for the given tables. The tables are adopted, not copied.
/// `grid_override`, when non-null, pins the state's grid instead of
/// deriving it from the table bounds — shards of one base state must all
/// linearize against the base grid so cell keys and epsilon levels agree
/// across shards (core/sharded_state.h).
std::shared_ptr<const EngineState> BuildEngineState(
    std::shared_ptr<const data::PointSet> points,
    std::shared_ptr<const data::RegionSet> regions,
    const raster::Grid* grid_override = nullptr);

/// Convenience overload that wraps the tables (moved, not copied).
std::shared_ptr<const EngineState> BuildEngineState(data::PointSet points,
                                                    data::RegionSet regions);

/// poly_index value passed to an HrProvider for polygons that are not part
/// of the registered region table (ad-hoc query polygons).
inline constexpr size_t kAdHocPolygon = static_cast<size_t>(-1);

/// Returns the HR approximation of `poly` at the level implied by
/// `epsilon` — either freshly built or shared from a cache. Must be
/// thread-safe; the returned structure must stay valid for the query's
/// lifetime (shared_ptr ownership guarantees it).
using HrProvider = std::function<std::shared_ptr<const raster::HierarchicalRaster>(
    size_t poly_index, const geom::Polygon& poly, double epsilon)>;

/// Injection points for the serving layer. Defaults (empty functions)
/// reproduce the single-threaded engine exactly.
struct ExecHooks {
  /// Approximation source; null -> build fresh on the caller's stack.
  HrProvider hr_provider;
  /// Runs fn(0..n-1) — possibly concurrently, in any order. Used for the
  /// per-polygon stage of the point-index plan; the per-region combine
  /// stays serial in polygon order, so results are bit-identical to the
  /// serial execution regardless of scheduling.
  std::function<void(size_t n, const std::function<void(size_t)>& fn)> parallel_for;
  /// Cap on concurrently in-flight iterations of any fan-out stage
  /// (RunMaybeParallel chunks the iteration space). 0 = unlimited. A
  /// scheduling knob only — results are identical at any cap; the serving
  /// layer wires service::ExecOptions::max_shard_fanout here to keep one
  /// query from monopolizing every shard connection at once.
  size_t max_fanout = 0;
  /// Span collector of the submitting query (telemetry/trace.h); null
  /// when tracing is off. Observe-only: stages record wall-clock spans
  /// into it, nothing reads it back during execution — results are
  /// byte-identical with or without a trace attached.
  telemetry::QueryTrace* trace = nullptr;
};

// ---- executor building blocks -----------------------------------------
// Shared by the unsharded executor below and the sharded scatter-gather
// executor (core/sharded_state.h) so the two paths cannot drift apart —
// the sharded merge identity depends on them performing the exact same
// plan resolution and row assembly.

/// Optimizer profile for a region aggregation over `state`.
query::QueryProfile MakeAggregateProfile(const EngineState& state, double epsilon,
                                         const ExecHooks& hooks);

/// The Mode that pins an already-resolved plan: executors that choose a
/// plan against one cost model (e.g. the shard-aware profile) and then
/// delegate execution must not let the delegate's optimizer second-guess
/// the choice.
Mode ModeForPlan(query::PlanKind plan);

/// Runs fn(0..n-1) through hooks.parallel_for when set (and n > 1),
/// serially otherwise — the standard fan-out of every executor stage.
void RunMaybeParallel(const ExecHooks& hooks, size_t n,
                      const std::function<void(size_t)>& fn);

/// Applies the mode override, the epsilon==0 exactness requirement, and
/// the kPassengers reroute (the point index carries fare prefix sums
/// only) to the optimizer's choice.
query::PlanKind ResolveAggregatePlan(query::PlanKind optimizer_choice,
                                     join::AggKind agg, Attr attr, double epsilon,
                                     Mode mode);

/// Builds the per-region answer rows (value + Section 6 range) from the
/// merged per-region cell aggregates of a point-index execution.
void RowsFromRegionAggregates(const std::vector<join::CellAggregate>& per_region,
                              join::AggKind agg, std::vector<AggregateRow>* rows);

/// HR approximation of one polygon: through hooks.hr_provider when set
/// (the serving layer's cache), otherwise built fresh on this thread.
std::shared_ptr<const raster::HierarchicalRaster> HrForPolygon(
    const EngineState& state, const ExecHooks& hooks, size_t poly_index,
    const geom::Polygon& poly, double epsilon);

/// SELECT AGG(attr) FROM P, R WHERE P.loc INSIDE R.geometry GROUP BY R.id
/// with distance bound epsilon (0 = exact). Pure: state is shared-read.
AggregateAnswer ExecuteAggregate(const EngineState& state, join::AggKind agg,
                                 Attr attr, double epsilon, Mode mode = Mode::kAuto,
                                 const ExecHooks& hooks = {});

/// COUNT points inside an ad-hoc polygon with a guaranteed result range.
join::ResultRange ExecuteCountInPolygon(const EngineState& state,
                                        const geom::Polygon& poly, double epsilon,
                                        const ExecHooks& hooks = {});

/// Conservative approximate selection of point ids inside an ad-hoc
/// polygon (every true inside point returned; extras within epsilon).
std::vector<uint32_t> ExecuteSelectInPolygon(const EngineState& state,
                                             const geom::Polygon& poly, double epsilon,
                                             const ExecHooks& hooks = {});

// ---- v2 executors: the typed distance-bound contract -------------------
// The envelope's ErrorBound replaces the loose epsilon: kAbsoluteDistance
// reproduces the Grid::LevelForEpsilon snapping, kGridLevel pins the HR
// level exactly, kExact bypasses approximation entirely (exact plans for
// aggregations, brute-force point-in-polygon for ad-hoc queries). The
// double-epsilon entry points above remain as the Absolute(epsilon) case.

AggregateAnswer ExecuteAggregate(const EngineState& state, join::AggKind agg,
                                 Attr attr, const query::ErrorBound& bound,
                                 Mode mode = Mode::kAuto,
                                 const ExecHooks& hooks = {});

/// COUNT under a typed bound. Exact bounds scan the point table with PIP
/// tests (range collapses to the exact count); approximate bounds probe
/// the point index through the bound's grid level.
CountAnswer ExecuteCount(const EngineState& state, const geom::Polygon& poly,
                         const query::ErrorBound& bound,
                         const ExecHooks& hooks = {});

/// Selection under a typed bound. Exact bounds return exactly the inside
/// points, ascending by row id; approximate bounds return the
/// conservative covered set in the index's canonical (leaf key, row)
/// order, as before.
SelectAnswer ExecuteSelect(const EngineState& state, const geom::Polygon& poly,
                           const query::ErrorBound& bound,
                           const ExecHooks& hooks = {});

}  // namespace dbsa::core

#endif  // DBSA_CORE_ENGINE_STATE_H_
