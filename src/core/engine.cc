#include "core/engine.h"

#include <algorithm>

#include "canvas/brj.h"
#include "join/exact_join.h"
#include "join/si_join.h"
#include "util/check.h"
#include "util/timer.h"

namespace dbsa::core {

struct SpatialEngine::Impl {
  std::optional<raster::Grid> grid;
  std::optional<join::PointIndex> point_index;
  std::optional<query::SelectivityHistogram> histogram;
};

SpatialEngine::SpatialEngine() : impl_(std::make_unique<Impl>()) {}
SpatialEngine::~SpatialEngine() = default;

void SpatialEngine::SetPoints(data::PointSet points) {
  points_ = std::move(points);
  passengers_as_double_.assign(points_.passengers.begin(), points_.passengers.end());
  impl_->grid.reset();
  impl_->point_index.reset();
  impl_->histogram.reset();
}

void SpatialEngine::SetRegions(data::RegionSet regions) {
  regions_ = std::move(regions);
  impl_->grid.reset();
}

const raster::Grid& SpatialEngine::grid() const {
  DBSA_CHECK(impl_->grid.has_value());
  return *impl_->grid;
}

const double* SpatialEngine::AttrColumn(Attr attr) {
  switch (attr) {
    case Attr::kNone:
      return nullptr;
    case Attr::kFare:
      return points_.fare.data();
    case Attr::kPassengers:
      return passengers_as_double_.data();
  }
  return nullptr;
}

join::JoinInput SpatialEngine::MakeInput(Attr attr) {
  if (!impl_->grid.has_value()) {
    geom::Box bounds = points_.Bounds();
    bounds.Extend(regions_.Bounds());
    impl_->grid = raster::Grid::Covering(bounds);
  }
  join::JoinInput in;
  in.points = points_.locs.data();
  in.attrs = AttrColumn(attr);
  in.num_points = points_.size();
  in.polys = &regions_.polys;
  in.region_of = &regions_.region_of;
  in.num_regions = regions_.num_regions;
  return in;
}

void SpatialEngine::EnsurePointIndex() {
  if (!impl_->point_index.has_value()) {
    impl_->point_index.emplace(points_.locs.data(), points_.fare.data(),
                               points_.size(), *impl_->grid);
  }
}

AggregateAnswer SpatialEngine::Aggregate(join::AggKind agg, Attr attr, double epsilon,
                                         Mode mode) {
  DBSA_CHECK(!regions_.polys.empty());
  const join::JoinInput in = MakeInput(attr);
  AggregateAnswer answer;

  // Plan selection.
  query::QueryProfile profile;
  profile.num_points = points_.size();
  profile.num_polygons = regions_.NumPolygons();
  profile.avg_vertices = regions_.AvgVertices();
  profile.epsilon = epsilon;
  profile.universe_extent = impl_->grid->side();
  profile.total_perimeter = regions_.TotalPerimeter();
  profile.total_polygon_area = regions_.TotalArea();
  profile.point_index_available = impl_->point_index.has_value();
  const query::PlanChoice choice = query::ChoosePlan(profile);

  query::PlanKind plan = choice.kind;
  switch (mode) {
    case Mode::kAuto:
      break;
    case Mode::kAct:
      plan = query::PlanKind::kActJoin;
      break;
    case Mode::kPointIndex:
      plan = query::PlanKind::kPointIndexJoin;
      break;
    case Mode::kCanvasBrj:
      plan = query::PlanKind::kCanvasBrj;
      break;
    case Mode::kExact:
      plan = query::PlanKind::kExactRStar;
      break;
  }
  if (epsilon <= 0.0) plan = query::PlanKind::kExactRStar;

  answer.stats.plan = plan;
  answer.stats.explain = choice.explain;

  Timer timer;
  switch (plan) {
    case query::PlanKind::kActJoin: {
      join::ActJoinOptions opts;
      opts.epsilon = epsilon;
      const join::JoinStats stats = join::ActJoin(in, agg, *impl_->grid, opts);
      answer.stats.pip_tests = stats.pip_tests;
      answer.stats.index_bytes = stats.index_bytes;
      answer.stats.achieved_epsilon =
          impl_->grid->AchievedEpsilon(impl_->grid->LevelForEpsilon(epsilon));
      answer.rows.resize(stats.value.size());
      for (size_t r = 0; r < stats.value.size(); ++r) {
        answer.rows[r] = {static_cast<uint32_t>(r), stats.value[r], stats.value[r],
                          stats.value[r]};
      }
      break;
    }
    case query::PlanKind::kPointIndexJoin: {
      EnsurePointIndex();
      DBSA_CHECK(agg == join::AggKind::kCount || agg == join::AggKind::kSum ||
                 agg == join::AggKind::kAvg);
      answer.stats.achieved_epsilon =
          impl_->grid->AchievedEpsilon(impl_->grid->LevelForEpsilon(epsilon));
      // Per region: conservative HR query cells + prefix-sum lookups; the
      // boundary partials give the Section 6 result range.
      std::vector<join::CellAggregate> per_region(regions_.num_regions);
      for (size_t j = 0; j < regions_.polys.size(); ++j) {
        const raster::HierarchicalRaster hr = raster::HierarchicalRaster::BuildEpsilon(
            regions_.polys[j], *impl_->grid, epsilon);
        const join::CellAggregate cell_agg =
            impl_->point_index->QueryCells(hr, join::SearchStrategy::kRadixSpline);
        join::CellAggregate& acc = per_region[regions_.region_of[j]];
        acc.count += cell_agg.count;
        acc.sum += cell_agg.sum;
        acc.boundary_count += cell_agg.boundary_count;
        acc.boundary_sum += cell_agg.boundary_sum;
      }
      answer.stats.index_bytes =
          impl_->point_index->MemoryBytes(join::SearchStrategy::kRadixSpline);
      answer.rows.resize(per_region.size());
      for (size_t r = 0; r < per_region.size(); ++r) {
        const join::CellAggregate& a = per_region[r];
        double value = 0.0, lo = 0.0, hi = 0.0;
        if (agg == join::AggKind::kCount) {
          const join::ResultRange range = join::CountRange(a);
          value = range.estimate;
          lo = range.lo;
          hi = range.hi;
        } else if (agg == join::AggKind::kSum) {
          const join::ResultRange range = join::SumRange(a);
          value = range.estimate;
          lo = range.lo;
          hi = range.hi;
        } else {  // AVG
          value = a.count > 0 ? a.sum / a.count : 0.0;
          lo = hi = value;
        }
        answer.rows[r] = {static_cast<uint32_t>(r), value, lo, hi};
      }
      break;
    }
    case query::PlanKind::kCanvasBrj: {
      canvas::BrjOptions opts;
      opts.epsilon = epsilon;
      const canvas::BrjResult brj = canvas::BoundedRasterJoin(
          in.points, in.attrs, in.num_points, regions_.polys, regions_.region_of,
          regions_.num_regions, impl_->grid->universe(), opts);
      answer.stats.achieved_epsilon = epsilon;
      answer.rows.resize(regions_.num_regions);
      for (size_t r = 0; r < regions_.num_regions; ++r) {
        double value = 0.0;
        if (agg == join::AggKind::kCount) {
          value = brj.count[r];
        } else if (agg == join::AggKind::kSum) {
          value = brj.sum[r];
        } else if (agg == join::AggKind::kAvg) {
          value = brj.count[r] > 0 ? brj.sum[r] / brj.count[r] : 0.0;
        } else {
          DBSA_CHECK(false);  // MIN/MAX not supported on the count canvas.
        }
        answer.rows[r] = {static_cast<uint32_t>(r), value, value, value};
      }
      break;
    }
    case query::PlanKind::kExactRStar: {
      const join::JoinStats stats = join::RStarMbrJoin(in, agg);
      answer.stats.pip_tests = stats.pip_tests;
      answer.stats.index_bytes = stats.index_bytes;
      answer.stats.achieved_epsilon = 0.0;
      answer.rows.resize(stats.value.size());
      for (size_t r = 0; r < stats.value.size(); ++r) {
        answer.rows[r] = {static_cast<uint32_t>(r), stats.value[r], stats.value[r],
                          stats.value[r]};
      }
      break;
    }
  }
  answer.stats.elapsed_ms = timer.Millis();
  return answer;
}

std::vector<uint32_t> SpatialEngine::SelectInPolygon(const geom::Polygon& poly,
                                                     double epsilon) {
  MakeInput(Attr::kNone);
  EnsurePointIndex();
  const raster::HierarchicalRaster hr =
      raster::HierarchicalRaster::BuildEpsilon(poly, *impl_->grid, epsilon);
  std::vector<uint32_t> ids;
  impl_->point_index->SelectIds(hr, join::SearchStrategy::kRadixSpline, &ids);
  return ids;
}

join::ResultRange SpatialEngine::CountInPolygon(const geom::Polygon& poly,
                                                double epsilon) {
  MakeInput(Attr::kNone);
  EnsurePointIndex();
  const raster::HierarchicalRaster hr =
      raster::HierarchicalRaster::BuildEpsilon(poly, *impl_->grid, epsilon);
  const join::CellAggregate agg =
      impl_->point_index->QueryCells(hr, join::SearchStrategy::kRadixSpline);
  return join::CountRange(agg);
}

}  // namespace dbsa::core
