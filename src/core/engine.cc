#include "core/engine.h"

#include <utility>

#include "util/check.h"

namespace dbsa::core {

SpatialEngine::SpatialEngine()
    : points_(std::make_shared<const data::PointSet>()),
      regions_(std::make_shared<const data::RegionSet>()) {}

SpatialEngine::~SpatialEngine() = default;

void SpatialEngine::SetPoints(data::PointSet points) {
  points_ = std::make_shared<const data::PointSet>(std::move(points));
  state_.reset();
}

void SpatialEngine::SetRegions(data::RegionSet regions) {
  regions_ = std::make_shared<const data::RegionSet>(std::move(regions));
  state_.reset();
}

std::shared_ptr<const EngineState> SpatialEngine::Snapshot() {
  if (!state_) state_ = BuildEngineState(points_, regions_);
  return state_;
}

const raster::Grid& SpatialEngine::grid() const {
  DBSA_CHECK(state_ != nullptr);
  return state_->grid;
}

AggregateAnswer SpatialEngine::Aggregate(join::AggKind agg, Attr attr, double epsilon,
                                         Mode mode) {
  return ExecuteAggregate(*Snapshot(), agg, attr, epsilon, mode);
}

join::ResultRange SpatialEngine::CountInPolygon(const geom::Polygon& poly,
                                                double epsilon) {
  return ExecuteCountInPolygon(*Snapshot(), poly, epsilon);
}

std::vector<uint32_t> SpatialEngine::SelectInPolygon(const geom::Polygon& poly,
                                                     double epsilon) {
  return ExecuteSelectInPolygon(*Snapshot(), poly, epsilon);
}

}  // namespace dbsa::core
