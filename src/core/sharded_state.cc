#include "core/sharded_state.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <numeric>
#include <utility>

#include "join/result_range.h"
#include "sfc/hilbert.h"
#include "util/check.h"
#include "util/timer.h"

namespace dbsa::core {

namespace {

/// Decomposes the Hilbert run [h_lo, h_hi] (positions at `hilbert_level`)
/// into maximal curve-aligned blocks. Each aligned block of 4^b positions
/// is — by the curve's hierarchical containment (sfc_test) — exactly the
/// descendant set of ONE quadtree cell at level (hilbert_level - b), so it
/// converts to one contiguous leaf-key interval. Returns the intervals
/// sorted and merged: the shard's point keys all lie inside them.
std::vector<std::pair<uint64_t, uint64_t>> HilbertRunToKeyRanges(
    uint64_t h_lo, uint64_t h_hi, int hilbert_level) {
  std::vector<std::pair<uint64_t, uint64_t>> ranges;
  uint64_t lo = h_lo;
  while (lo <= h_hi) {
    // Largest aligned block starting at lo that still fits in the run.
    int b = 0;
    while (b < hilbert_level) {
      const uint64_t size = uint64_t{1} << (2 * (b + 1));
      if (lo % size != 0 || lo + size - 1 > h_hi) break;
      ++b;
    }
    const int level = hilbert_level - b;
    uint32_t x = 0, y = 0;
    if (level > 0) {
      sfc::HilbertDecode(lo >> (2 * b), level, &x, &y);
    }
    const raster::CellId cell = raster::CellId::FromXY(level, x, y);
    ranges.emplace_back(cell.LeafKeyMin(), cell.LeafKeyMax());
    lo += uint64_t{1} << (2 * b);
    if (lo == 0) break;  // Wrapped (whole-curve run).
  }
  std::sort(ranges.begin(), ranges.end());
  // Merge adjacent/contiguous intervals to shrink the search list.
  std::vector<std::pair<uint64_t, uint64_t>> merged;
  for (const auto& r : ranges) {
    if (!merged.empty() && merged.back().second != UINT64_MAX &&
        merged.back().second + 1 >= r.first) {
      merged.back().second = std::max(merged.back().second, r.second);
    } else {
      merged.push_back(r);
    }
  }
  return merged;
}

}  // namespace

std::shared_ptr<const ShardedState> ShardedState::Build(
    std::shared_ptr<const EngineState> base, const ShardingOptions& options) {
  DBSA_CHECK(base != nullptr);
  std::shared_ptr<ShardedState> sharded(new ShardedState());
  sharded->base_ = std::move(base);
  const EngineState& b = *sharded->base_;
  const std::vector<geom::Point>& locs = b.points->locs;
  const size_t n = locs.size();
  const size_t k =
      n == 0 ? 1 : std::min(std::max<size_t>(options.num_shards, 1), n);
  const int hilbert_level =
      std::clamp(options.hilbert_level, 1, raster::CellId::kMaxLevel);
  sharded->hilbert_level_ = hilbert_level;
  // Shard counts silently clamp to the point count; a requested
  // only_slice must survive that clamp or shard(only_slice) would be an
  // out-of-bounds access on the caller's side.
  DBSA_CHECK(options.only_slice < 0 ||
             static_cast<size_t>(options.only_slice) < k);
  sharded->has_slices_ = options.build_slices && options.only_slice < 0;

  // Order the points along the Hilbert curve of the base grid at the
  // chosen level (ties — points in one curve cell — by row id, so every
  // shard slice is ascending in row id after the cut).
  std::vector<uint64_t> rank(n);
  for (size_t i = 0; i < n; ++i) {
    uint32_t ix = 0, iy = 0;
    b.grid.PointToXY(locs[i], hilbert_level, &ix, &iy);
    rank[i] = sfc::HilbertEncode(ix, iy, hilbert_level);
  }
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b2) {
    return rank[a] != rank[b2] ? rank[a] < rank[b2] : a < b2;
  });

  sharded->shards_.resize(k);
  for (size_t s = 0; s < k; ++s) {
    Shard& shard = sharded->shards_[s];
    const size_t begin = n * s / k;
    const size_t end = n * (s + 1) / k;
    shard.global_ids.assign(order.begin() + begin, order.begin() + end);
    if (shard.global_ids.empty()) continue;
    // Curve run of this shard: [rank of first point, rank of last point]
    // in the (rank, id)-sorted order. Adjacent shards overlap in at most
    // the one curve cell a cut may split.
    shard.hilbert_lo = rank[order[begin]];
    shard.hilbert_hi = rank[order[end - 1]];
    shard.key_ranges =
        HilbertRunToKeyRanges(shard.hilbert_lo, shard.hilbert_hi, hilbert_level);
    std::sort(shard.global_ids.begin(), shard.global_ids.end());

    // Routing metadata (bounds + exact leaf-coordinate box) is always
    // built — pruning must behave identically on routing-only builds.
    for (const uint32_t id : shard.global_ids) {
      shard.bounds.Extend(b.points->locs[id]);
      uint32_t ix = 0, iy = 0;
      b.grid.PointToXY(b.points->locs[id], raster::CellId::kMaxLevel, &ix, &iy);
      shard.min_ix = std::min(shard.min_ix, ix);
      shard.min_iy = std::min(shard.min_iy, iy);
      shard.max_ix = std::max(shard.max_ix, ix);
      shard.max_iy = std::max(shard.max_iy, iy);
    }
    if (!options.build_slices) continue;  // Routing-only: no slice copy.
    if (options.only_slice >= 0 && static_cast<size_t>(options.only_slice) != s) {
      continue;  // Single-slice build: skip the other shards' copies.
    }

    // Attribute columns are copied all-or-nothing: a column is either
    // parallel to locs (copied row-for-row) or absent (left empty) — a
    // partially-filled base column would otherwise silently misalign the
    // shard's prefix sums against its points.
    const bool has_fare = b.points->fare.size() == n;
    const bool has_passengers = b.points->passengers.size() == n;
    const bool has_hour = b.points->hour.size() == n;
    auto slice = std::make_shared<data::PointSet>();
    slice->locs.reserve(shard.global_ids.size());
    if (has_fare) slice->fare.reserve(shard.global_ids.size());
    if (has_passengers) slice->passengers.reserve(shard.global_ids.size());
    if (has_hour) slice->hour.reserve(shard.global_ids.size());
    for (const uint32_t id : shard.global_ids) {
      slice->locs.push_back(b.points->locs[id]);
      if (has_fare) slice->fare.push_back(b.points->fare[id]);
      if (has_passengers) slice->passengers.push_back(b.points->passengers[id]);
      if (has_hour) slice->hour.push_back(b.points->hour[id]);
    }
    shard.state = BuildEngineState(std::move(slice), b.regions, &b.grid);
  }
  return sharded;
}

std::shared_ptr<const ShardedState> ShardedState::FromParts(
    std::shared_ptr<const EngineState> base, std::vector<Shard> shards,
    int hilbert_level, bool has_slices) {
  DBSA_CHECK(base != nullptr);
  DBSA_CHECK(!shards.empty());
  if (has_slices) {
    for (const Shard& shard : shards) {
      DBSA_CHECK(shard.state != nullptr || shard.global_ids.empty());
    }
  }
  std::shared_ptr<ShardedState> sharded(new ShardedState());
  sharded->base_ = std::move(base);
  sharded->shards_ = std::move(shards);
  sharded->hilbert_level_ = hilbert_level;
  sharded->has_slices_ = has_slices;
  return sharded;
}

std::vector<ShardedState::CellRoute> ShardedState::MakeRoutes(
    const raster::HrCell* cells, size_t num_cells) const {
  std::vector<CellRoute> routes(num_cells);
  for (size_t c = 0; c < num_cells; ++c) {
    CellRoute& route = routes[c];
    uint32_t cx = 0, cy = 0;
    cells[c].id.ToXY(&cx, &cy);
    const int leaf_shift = raster::CellId::kMaxLevel - cells[c].id.level();
    route.lo_x = cx << leaf_shift;
    route.lo_y = cy << leaf_shift;
    route.hi_x = ((cx + 1u) << leaf_shift) - 1u;
    route.hi_y = ((cy + 1u) << leaf_shift) - 1u;
    route.key_lo = cells[c].id.LeafKeyMin();
    route.key_hi = cells[c].id.LeafKeyMax();
  }
  return routes;
}

bool ShardedState::ShardIntersects(size_t s, const CellRoute* routes,
                                   size_t num_cells) const {
  const Shard& shard = shards_[s];
  // global_ids (not state): a routing-only build has no slice states but
  // must route identically to a full build.
  if (shard.global_ids.empty() || shard.min_ix > shard.max_ix) return false;
  // Merge-join: routes are in ascending key order (HR cells are sorted
  // and disjoint) and key_ranges are sorted disjoint intervals, so one
  // forward pass with ~3 integer compares per step decides every cell.
  const auto& ranges = shard.key_ranges;
  size_t ri = 0;
  for (size_t c = 0; c < num_cells; ++c) {
    const CellRoute& r = routes[c];
    while (ri < ranges.size() && ranges[ri].second < r.key_lo) ++ri;
    if (ri == ranges.size()) return false;
    if (ranges[ri].first <= r.key_hi && r.lo_x <= shard.max_ix &&
        r.hi_x >= shard.min_ix && r.lo_y <= shard.max_iy &&
        r.hi_y >= shard.min_iy) {
      return true;
    }
  }
  return false;
}

bool ShardedState::ShardIntersects(size_t s, const raster::HrCell* cells,
                                   size_t num_cells) const {
  const std::vector<CellRoute> routes = MakeRoutes(cells, num_cells);
  return ShardIntersects(s, routes.data(), num_cells);
}

std::vector<uint32_t> ShardedState::SurvivingShards(const CellRoute* routes,
                                                    size_t num_cells) const {
  std::vector<uint32_t> out;
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (ShardIntersects(s, routes, num_cells)) {
      out.push_back(static_cast<uint32_t>(s));
    }
  }
  return out;
}

std::vector<uint32_t> ShardedState::SurvivingShards(
    const raster::HierarchicalRaster& hr) const {
  const std::vector<CellRoute> routes =
      MakeRoutes(hr.cells().data(), hr.cells().size());
  return SurvivingShards(routes.data(), routes.size());
}

std::vector<raster::HrCell> ShardedState::PruneCellsForShard(
    size_t s, const raster::HrCell* cells, const CellRoute* routes,
    size_t num_cells) const {
  std::vector<raster::HrCell> out;
  const Shard& shard = shards_[s];
  if (shard.global_ids.empty() || shard.min_ix > shard.max_ix) return out;
  // Merge-join over the sorted cell keys and the shard's sorted curve-run
  // intervals: curve-run test routes near-exclusively (only shards whose
  // run crosses the cell keep it), leaf-bounds test trims the run's
  // endpoint cells. Both integer-exact, so a cell containing a shard
  // point always survives for that shard.
  const auto& ranges = shard.key_ranges;
  size_t ri = 0;
  for (size_t c = 0; c < num_cells; ++c) {
    const CellRoute& r = routes[c];
    while (ri < ranges.size() && ranges[ri].second < r.key_lo) ++ri;
    if (ri == ranges.size()) break;
    if (ranges[ri].first <= r.key_hi && r.lo_x <= shard.max_ix &&
        r.hi_x >= shard.min_ix && r.lo_y <= shard.max_iy &&
        r.hi_y >= shard.min_iy) {
      out.push_back(cells[c]);
    }
  }
  return out;
}

std::vector<raster::HrCell> ShardedState::PruneCellsForShard(
    size_t s, const raster::HrCell* cells, size_t num_cells) const {
  const std::vector<CellRoute> routes = MakeRoutes(cells, num_cells);
  return PruneCellsForShard(s, cells, routes.data(), num_cells);
}

size_t ShardedState::IndexBytes() const {
  size_t bytes = 0;
  for (const Shard& shard : shards_) {
    if (shard.state != nullptr && shard.state->point_index.has_value()) {
      bytes +=
          shard.state->point_index->MemoryBytes(join::SearchStrategy::kRadixSpline);
    }
  }
  return bytes;
}

namespace {

/// Scatter-gather of one polygon's HR over the shards: each surviving
/// shard answers its pruned cell subset from its local index — in
/// parallel via hooks.parallel_for when the cell volume warrants it (the
/// wall-clock division the optimizer's parallel_shards discount models) —
/// and partials merge in ascending shard order. `touched`, when given,
/// records which shards survived (ExecStats::shards_probed).
join::CellAggregate ScatterGatherCells(const ShardedState& sharded,
                                       const raster::HierarchicalRaster& hr,
                                       const ExecHooks& hooks,
                                       std::atomic<uint32_t>* touched,
                                       size_t* num_surviving = nullptr) {
  // The in-process scatter needs slice states; a routing-only build
  // (socket clients) must go through ShardRouter instead.
  DBSA_CHECK(sharded.has_slices());
  // Routes computed once, shared by every shard's pruning pass.
  const std::vector<ShardedState::CellRoute> routes =
      sharded.MakeRoutes(hr.cells().data(), hr.cells().size());
  const std::vector<uint32_t> surviving =
      sharded.SurvivingShards(routes.data(), routes.size());
  if (touched != nullptr) {
    for (const uint32_t s : surviving) {
      touched[s].store(1, std::memory_order_relaxed);
    }
  }
  if (num_surviving != nullptr) *num_surviving = surviving.size();
  std::vector<join::CellAggregate> partials(surviving.size());
  const auto one_shard = [&](size_t t) {
    const size_t s = surviving[t];
    const std::vector<raster::HrCell> cells = sharded.PruneCellsForShard(
        s, hr.cells().data(), routes.data(), hr.cells().size());
    partials[t] = sharded.shard(s).state->point_index->QueryCells(
        cells.data(), cells.size(), join::SearchStrategy::kRadixSpline);
  };
  if (hr.cells().size() >= kShardFanOutMinCells) {
    RunMaybeParallel(hooks, surviving.size(), one_shard);
  } else {
    for (size_t t = 0; t < surviving.size(); ++t) one_shard(t);
  }
  join::CellAggregate agg;
  for (const join::CellAggregate& partial : partials) agg.Merge(partial);
  return agg;
}

}  // namespace

AggregateAnswer ExecuteAggregate(const ShardedState& sharded, join::AggKind agg,
                                 Attr attr, double epsilon, Mode mode,
                                 const ExecHooks& hooks) {
  const EngineState& base = sharded.base();
  DBSA_CHECK(!base.regions->polys.empty());

  // Plan selection runs through the SAME shared helpers as the unsharded
  // executor (engine_state.cc), with one addition: the cost model knows
  // the point-index probe fans out across the shards, so under
  // Mode::kAuto it may legitimately pick a different plan than an
  // unsharded engine would (see the byte-identity contract in the header:
  // the guarantee is per pinned plan).
  query::QueryProfile profile = MakeAggregateProfile(base, epsilon, hooks);
  profile.parallel_shards = static_cast<double>(sharded.num_shards());
  const query::PlanChoice choice = query::ChoosePlan(profile);
  const query::PlanKind plan =
      ResolveAggregatePlan(choice.kind, agg, attr, epsilon, mode);

  if (plan != query::PlanKind::kPointIndexJoin) {
    // Non-sharded plans execute against the base snapshot, byte-identical
    // to the unsharded engine by construction. Pin the plan we chose —
    // the base's own optimizer pass must not second-guess it.
    AggregateAnswer answer = ExecuteAggregate(base, agg, attr, epsilon,
                                              epsilon <= 0.0 ? Mode::kExact
                                                             : ModeForPlan(plan),
                                              hooks);
    answer.stats.explain = choice.explain;
    return answer;
  }

  AggregateAnswer answer;
  answer.stats.plan = plan;
  answer.stats.explain = choice.explain;

  Timer timer;
  DBSA_CHECK(agg == join::AggKind::kCount || agg == join::AggKind::kSum ||
             agg == join::AggKind::kAvg);
  answer.stats.hr_level = base.grid.LevelForEpsilon(epsilon);
  answer.stats.achieved_epsilon =
      base.grid.AchievedEpsilon(answer.stats.hr_level);

  // Scatter stage — independent per polygon (HR lookup + shard-local
  // prefix-sum probes), fanned out via the hook. The gather inside each
  // polygon walks the shards in ascending order, so scheduling never
  // changes the merge order.
  const std::vector<geom::Polygon>& polys = base.regions->polys;
  std::vector<join::CellAggregate> per_poly(polys.size());
  std::unique_ptr<std::atomic<uint32_t>[]> touched(
      new std::atomic<uint32_t>[sharded.num_shards()]);
  for (size_t s = 0; s < sharded.num_shards(); ++s) touched[s].store(0);
  const auto one_poly = [&](size_t j) {
    const std::shared_ptr<const raster::HierarchicalRaster> hr =
        HrForPolygon(base, hooks, j, polys[j], epsilon);
    per_poly[j] = ScatterGatherCells(sharded, *hr, hooks, touched.get());
  };
  RunMaybeParallel(hooks, polys.size(), one_poly);

  // Gather stage — identical to the unsharded point-index plan: combine
  // into regions serially in polygon order.
  std::vector<join::CellAggregate> per_region(base.regions->num_regions);
  for (size_t j = 0; j < polys.size(); ++j) {
    answer.stats.query_cells += per_poly[j].query_cells;
    per_region[base.regions->region_of[j]].Merge(per_poly[j]);
  }
  answer.stats.index_bytes = sharded.IndexBytes();
  for (size_t s = 0; s < sharded.num_shards(); ++s) {
    answer.stats.shards_probed += touched[s].load(std::memory_order_relaxed);
  }
  RowsFromRegionAggregates(per_region, agg, &answer.rows);
  answer.stats.elapsed_ms = timer.Millis();
  return answer;
}

join::ResultRange ExecuteCountInPolygon(const ShardedState& sharded,
                                        const geom::Polygon& poly, double epsilon,
                                        const ExecHooks& hooks) {
  return ExecuteCount(sharded, poly, query::ErrorBound::Absolute(epsilon), hooks)
      .range;
}

std::vector<uint32_t> ExecuteSelectInPolygon(const ShardedState& sharded,
                                             const geom::Polygon& poly,
                                             double epsilon,
                                             const ExecHooks& hooks) {
  return ExecuteSelect(sharded, poly, query::ErrorBound::Absolute(epsilon), hooks)
      .ids;
}

AggregateAnswer ExecuteAggregate(const ShardedState& sharded, join::AggKind agg,
                                 Attr attr, const query::ErrorBound& bound,
                                 Mode mode, const ExecHooks& hooks) {
  return ExecuteAggregate(sharded, agg, attr,
                          bound.EffectiveEpsilon(sharded.base().grid),
                          bound.exact() ? Mode::kExact : mode, hooks);
}

CountAnswer ExecuteCount(const ShardedState& sharded, const geom::Polygon& poly,
                         const query::ErrorBound& bound, const ExecHooks& hooks) {
  const EngineState& base = sharded.base();
  if (bound.exact()) return ExecuteCount(base, poly, bound, hooks);
  CountAnswer out;
  Timer timer;
  const double epsilon = bound.EffectiveEpsilon(base.grid);
  const std::shared_ptr<const raster::HierarchicalRaster> hr =
      HrForPolygon(base, hooks, kAdHocPolygon, poly, epsilon);
  // Scatter across the surviving shards in parallel; gather in ascending
  // shard order (counts are integers and sums compensated pairs — the
  // merge is exact).
  const join::CellAggregate agg = ScatterGatherCells(
      sharded, *hr, hooks, /*touched=*/nullptr, &out.stats.shards_probed);
  out.range = join::CountRange(agg);
  out.stats.plan = query::PlanKind::kPointIndexJoin;
  out.stats.hr_level = base.grid.LevelForEpsilon(epsilon);
  out.stats.achieved_epsilon = base.grid.AchievedEpsilon(out.stats.hr_level);
  out.stats.query_cells = agg.query_cells;
  out.stats.index_bytes = sharded.IndexBytes();
  out.stats.elapsed_ms = timer.Millis();
  return out;
}

SelectAnswer ExecuteSelect(const ShardedState& sharded, const geom::Polygon& poly,
                           const query::ErrorBound& bound,
                           const ExecHooks& hooks) {
  const EngineState& base = sharded.base();
  if (bound.exact()) return ExecuteSelect(base, poly, bound, hooks);
  DBSA_CHECK(sharded.has_slices());  // Routing-only builds: ShardRouter only.
  SelectAnswer out;
  Timer timer;
  const double epsilon = bound.EffectiveEpsilon(base.grid);
  const std::shared_ptr<const raster::HierarchicalRaster> hr =
      HrForPolygon(base, hooks, kAdHocPolygon, poly, epsilon);
  const std::vector<ShardedState::CellRoute> routes =
      sharded.MakeRoutes(hr->cells().data(), hr->cells().size());
  const std::vector<uint32_t> surviving =
      sharded.SurvivingShards(routes.data(), routes.size());

  // Scatter: each surviving shard selects its local rows, remapped to
  // base-table ids.
  std::vector<std::vector<uint32_t>> per_shard(surviving.size());
  std::vector<size_t> per_shard_cells(surviving.size(), 0);
  RunMaybeParallel(hooks, surviving.size(), [&](size_t t) {
    const size_t s = surviving[t];
    const ShardedState::Shard& shard = sharded.shard(s);
    const std::vector<raster::HrCell> cells = sharded.PruneCellsForShard(
        s, hr->cells().data(), routes.data(), hr->cells().size());
    per_shard_cells[t] = cells.size();
    std::vector<uint32_t> local;
    shard.state->point_index->SelectIds(cells.data(), cells.size(),
                                        join::SearchStrategy::kRadixSpline, &local);
    per_shard[t].reserve(local.size());
    for (const uint32_t l : local) per_shard[t].push_back(shard.global_ids[l]);
  });

  // Gather: the unsharded index emits ids in (leaf key, row id) order —
  // disjoint cells ascending, canonical tie-break inside each cell (see
  // PrefixSumIndex::Build). Re-sorting the union by the same key restores
  // that order exactly, so the merged selection is byte-identical.
  std::vector<std::pair<uint64_t, uint32_t>> keyed;
  for (const std::vector<uint32_t>& ids : per_shard) {
    for (const uint32_t id : ids) {
      keyed.emplace_back(base.grid.LeafKey(base.points->locs[id]), id);
    }
  }
  std::sort(keyed.begin(), keyed.end());
  out.ids.reserve(keyed.size());
  for (const auto& [key, id] : keyed) out.ids.push_back(id);
  out.stats.plan = query::PlanKind::kPointIndexJoin;
  out.stats.hr_level = base.grid.LevelForEpsilon(epsilon);
  out.stats.achieved_epsilon = base.grid.AchievedEpsilon(out.stats.hr_level);
  for (const size_t c : per_shard_cells) out.stats.query_cells += c;
  out.stats.index_bytes = sharded.IndexBytes();
  out.stats.shards_probed = surviving.size();
  out.stats.elapsed_ms = timer.Millis();
  return out;
}

}  // namespace dbsa::core
