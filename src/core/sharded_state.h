// SFC-sharded execution state — the scaling layer between one immutable
// EngineState snapshot and a multi-core (later multi-node) deployment.
//
// The point table is partitioned into K spatially-local shards by the
// Hilbert rank of each point's coordinates: points are ordered along the
// Hilbert curve (the better-locality linearization already used by
// bench/abl_sfc) and cut into K equal-size contiguous runs. Each shard is
// an independent EngineState slice — its own point table, attribute
// columns and eagerly built point index — sharing the base state's region
// table and, critically, the base GRID, so cell keys and epsilon levels
// agree across shards.
//
// Query execution is scatter-gather:
//
//   scatter  the query's HR approximation cells are routed only to shards
//            whose point bounds intersect them (shard pruning — exact
//            integer leaf-coordinate tests, no floating-point slack);
//   execute  each surviving shard answers its cell subset from its local
//            point index (fanned out via ExecHooks::parallel_for);
//   gather   shard partials merge in ascending shard order via
//            CellAggregate::Merge, and per-region combination proceeds
//            exactly like the unsharded point-index plan.
//
// Merge identity (per pinned plan): shards partition the points, every
// point's home cell survives pruning for its own shard, and the gather
// order is canonical — so COUNT aggregates, result ranges and selections
// are byte-identical to the unsharded engine for any shard count and any
// thread count. SUM/AVG aggregates match bit-for-bit as well: range sums
// travel as Neumaier-compensated (error-free transformation) pairs from
// the prefix arrays through CellAggregate::Merge (util/compensated.h),
// so partial sums are exact — association order never rounds — for any
// attribute column whose running sums fit the pair's ~106-bit window
// (every realistic column; previously the contract required dyadic
// values). Tested with adversarial non-dyadic attributes at
// K in {1,7,16} in sharded_state_test.cc.
// Under Mode::kAuto the identity covers the EXECUTION of whichever plan
// is chosen, not the choice itself: the shard-aware cost model (see
// QueryProfile::parallel_shards) may legitimately pick a different plan
// than an unsharded engine would — exactly as the serving layer's
// hr_cache_available advertisement already does — and different plans
// answer within the same distance bound but not bit-identically. Pin the
// plan with an explicit Mode to compare executions across shard counts.

#ifndef DBSA_CORE_SHARDED_STATE_H_
#define DBSA_CORE_SHARDED_STATE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/engine_state.h"
#include "raster/hierarchical_raster.h"

namespace dbsa::core {

struct ShardingOptions {
  /// Number of spatial shards (clamped to [1, num points]).
  size_t num_shards = 1;
  /// Grid level whose cells define the Hilbert ordering granularity.
  /// Points within one level-`hilbert_level` cell always land in the same
  /// shard run; 16 gives 2^32 curve positions — plenty below city scale.
  int hilbert_level = 16;
  /// Build each shard's slice EngineState (a copy of its points +
  /// attribute columns and an eagerly built point index). Routing
  /// metadata — curve runs, key ranges, bounds, the global-id map — is
  /// always built. Set false for a pure ROUTING client (the socket
  /// transport: it prunes and scatters but never executes shard-locally;
  /// the slices live in the shard-server processes), which skips the
  /// second full copy of the dataset and K index builds.
  bool build_slices = true;
  /// When >= 0 (and build_slices), materialize ONLY this shard's slice:
  /// a shard-server process keeps exactly one slice, and building the
  /// other K-1 copies + indexes first makes cluster startup O(K) per
  /// process. Routing metadata is still built for every shard. The
  /// in-process scatter executors need every slice, so has_slices() is
  /// false unless all of them were built.
  int only_slice = -1;
};

/// K spatially-local shards of one EngineState snapshot. Immutable after
/// Build, shareable behind shared_ptr exactly like EngineState itself.
class ShardedState {
 public:
  struct Shard {
    /// Slice state: shard points + shared regions, base grid, eagerly
    /// built point index. Null iff the shard is empty OR the state was
    /// built with ShardingOptions::build_slices == false (routing-only;
    /// see has_slices()).
    std::shared_ptr<const EngineState> state;
    /// Local row -> base-table row. Ascending, so shard-local sorted
    /// order equals the base (key, row) order restricted to the shard.
    std::vector<uint32_t> global_ids;
    /// Tight bounds of the shard's points (display / cost model).
    geom::Box bounds;
    /// Exact leaf-coordinate bounds at CellId::kMaxLevel, used for shard
    /// pruning: integer tests mean a cell that covers any shard point can
    /// never be pruned by rounding. Empty shard: min > max.
    uint32_t min_ix = UINT32_MAX, min_iy = UINT32_MAX;
    uint32_t max_ix = 0, max_iy = 0;
    /// Hilbert-curve positions (at the partitioner's level) of the
    /// shard's first and last points. The shard is a contiguous curve
    /// run, and every quadtree cell is a contiguous curve interval, so
    /// routing is an exact interval intersection — a cell is probed by
    /// (almost) exactly the shards whose curve segment crosses it, not by
    /// every shard whose bounding box happens to overlap. Empty: lo > hi.
    uint64_t hilbert_lo = 1, hilbert_hi = 0;
    /// The curve run [hilbert_lo, hilbert_hi], decomposed at build time
    /// into maximal curve-aligned quadtree blocks and re-expressed as
    /// sorted disjoint leaf-key (Morton) intervals. Query-time routing is
    /// then one binary search per cell over ~O(levels) intervals — no
    /// Hilbert arithmetic on the query path.
    std::vector<std::pair<uint64_t, uint64_t>> key_ranges;

    size_t num_points() const { return global_ids.size(); }
  };

  /// Partitions the base snapshot's points into `options.num_shards`
  /// Hilbert-contiguous shards. The base state is retained: non-sharded
  /// plans (ACT, canvas BRJ, exact) execute against it unchanged.
  static std::shared_ptr<const ShardedState> Build(
      std::shared_ptr<const EngineState> base, const ShardingOptions& options = {});

  /// Reassembles a sharded state from frozen parts (snapshot load,
  /// src/snapshot/). `shards` must be EXACTLY what Build would produce
  /// for the same base + hilbert_level — routing metadata (global_ids,
  /// bounds, leaf-coordinate extents, curve run, key_ranges) for every
  /// shard, slice states present iff `has_slices`. The byte-identity
  /// contract then holds by construction because routing and execution
  /// consume only these fields. SnapshotReader validates untrusted input
  /// before assembling; this factory trusts its caller.
  static std::shared_ptr<const ShardedState> FromParts(
      std::shared_ptr<const EngineState> base, std::vector<Shard> shards,
      int hilbert_level, bool has_slices);

  const EngineState& base() const { return *base_; }
  const std::shared_ptr<const EngineState>& base_ptr() const { return base_; }
  size_t num_shards() const { return shards_.size(); }
  /// False iff built with build_slices == false: routing/pruning work,
  /// the in-process scatter executors (which need shard(s).state) do not
  /// (they DBSA_CHECK), and IndexBytes() reports 0.
  bool has_slices() const { return has_slices_; }
  const Shard& shard(size_t i) const { return shards_[i]; }
  const std::vector<Shard>& shards() const { return shards_; }

  /// Per-cell routing geometry, precomputed once per query and shared by
  /// every shard's pruning test: the cell's inclusive leaf-key (Morton)
  /// range — matched against each shard's key_ranges — and its inclusive
  /// leaf-coordinate rectangle. All integer — routing decisions always
  /// agree with leaf-key membership.
  struct CellRoute {
    uint64_t key_lo, key_hi;
    uint32_t lo_x, lo_y, hi_x, hi_y;
  };

  /// Computes the routes of a query's cells (the per-query scatter prep).
  std::vector<CellRoute> MakeRoutes(const raster::HrCell* cells,
                                    size_t num_cells) const;

  /// True iff any routed cell intersects shard `s` — the pruning
  /// predicate of the scatter step: the cell's curve interval must cross
  /// the shard's curve run AND its rectangle the shard's point bounds.
  bool ShardIntersects(size_t s, const CellRoute* routes, size_t num_cells) const;

  /// Convenience overload (tests): routes computed on the fly.
  bool ShardIntersects(size_t s, const raster::HrCell* cells,
                       size_t num_cells) const;

  /// The scatter set of a query approximation: indexes of shards that
  /// survive pruning, ascending. This is the exact set execution probes.
  std::vector<uint32_t> SurvivingShards(const CellRoute* routes,
                                        size_t num_cells) const;

  /// Convenience overload (tests, stats): routes computed on the fly.
  std::vector<uint32_t> SurvivingShards(const raster::HierarchicalRaster& hr) const;

  /// Cells of `hr` that intersect shard `s` (the shard's scatter slice).
  /// This IS the message payload of the distribution seam: a serialized
  /// ScatterRequest (service/transport.h) carries exactly this slice to
  /// the shard's server, and the in-process executors below consume it
  /// directly — the two paths share one routing function so they cannot
  /// drift.
  std::vector<raster::HrCell> PruneCellsForShard(size_t s,
                                                 const raster::HrCell* cells,
                                                 const CellRoute* routes,
                                                 size_t num_cells) const;

  /// Convenience overload (tests): routes computed on the fly.
  std::vector<raster::HrCell> PruneCellsForShard(
      size_t s, const raster::HrCell* cells, size_t num_cells) const;

  /// Total bytes of the shard point indexes (stats).
  size_t IndexBytes() const;

  int hilbert_level() const { return hilbert_level_; }

 private:
  ShardedState() = default;

  std::shared_ptr<const EngineState> base_;
  std::vector<Shard> shards_;
  int hilbert_level_ = 16;
  bool has_slices_ = true;
};

/// Below this many approximation cells a query's shard fan-out cannot
/// amortize the task-submission overhead; the scatter runs on the calling
/// thread instead. Results are identical either way — only scheduling
/// changes. Shared by the in-process executors below and the
/// transport-backed shard-server executors (service/shard_server.h) so
/// the two paths schedule identically.
inline constexpr size_t kShardFanOutMinCells = 256;

/// Scatter-gather equivalents of the EngineState Execute* functions.
/// Per pinned plan, results are byte-identical to the unsharded
/// functions (see the merge identity above — Mode::kAuto may resolve to
/// a different plan than an unsharded engine); only ExecStats
/// bookkeeping fields (shards_probed, index_bytes, query-cell counters)
/// reflect the sharded execution.
///
/// Plans other than the point-index join do not shard — they run against
/// the base state exactly as ExecuteAggregate(state, ...) would.
AggregateAnswer ExecuteAggregate(const ShardedState& sharded, join::AggKind agg,
                                 Attr attr, double epsilon, Mode mode = Mode::kAuto,
                                 const ExecHooks& hooks = {});

join::ResultRange ExecuteCountInPolygon(const ShardedState& sharded,
                                        const geom::Polygon& poly, double epsilon,
                                        const ExecHooks& hooks = {});

std::vector<uint32_t> ExecuteSelectInPolygon(const ShardedState& sharded,
                                             const geom::Polygon& poly,
                                             double epsilon,
                                             const ExecHooks& hooks = {});

// ---- v2 executors (typed distance-bound contract) ----------------------
// Same envelope semantics as the EngineState versions in engine_state.h;
// exact bounds never scatter — they execute against the base snapshot, so
// all deployment paths answer exact queries identically by construction.

AggregateAnswer ExecuteAggregate(const ShardedState& sharded, join::AggKind agg,
                                 Attr attr, const query::ErrorBound& bound,
                                 Mode mode = Mode::kAuto,
                                 const ExecHooks& hooks = {});

CountAnswer ExecuteCount(const ShardedState& sharded, const geom::Polygon& poly,
                         const query::ErrorBound& bound,
                         const ExecHooks& hooks = {});

SelectAnswer ExecuteSelect(const ShardedState& sharded, const geom::Polygon& poly,
                           const query::ErrorBound& bound,
                           const ExecHooks& hooks = {});

}  // namespace dbsa::core

#endif  // DBSA_CORE_SHARDED_STATE_H_
