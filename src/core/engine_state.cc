#include "core/engine_state.h"

#include <algorithm>
#include <utility>

#include "canvas/brj.h"
#include "join/act_join.h"
#include "join/exact_join.h"
#include "util/check.h"
#include "util/timer.h"

namespace dbsa::core {

const double* EngineState::AttrColumn(Attr attr) const {
  switch (attr) {
    case Attr::kNone:
      return nullptr;
    case Attr::kFare:
      return points->fare.data();
    case Attr::kPassengers:
      return passengers_as_double.data();
  }
  return nullptr;
}

join::JoinInput EngineState::MakeInput(Attr attr) const {
  join::JoinInput in;
  in.points = points->locs.data();
  in.attrs = AttrColumn(attr);
  in.num_points = points->size();
  in.polys = &regions->polys;
  in.region_of = &regions->region_of;
  in.num_regions = regions->num_regions;
  return in;
}

std::shared_ptr<const EngineState> BuildEngineState(
    std::shared_ptr<const data::PointSet> points,
    std::shared_ptr<const data::RegionSet> regions,
    const raster::Grid* grid_override) {
  DBSA_CHECK(points != nullptr && regions != nullptr);
  auto state = std::make_shared<EngineState>();
  state->points = std::move(points);
  state->regions = std::move(regions);
  state->passengers_as_double.assign(state->points->passengers.begin(),
                                     state->points->passengers.end());
  if (grid_override != nullptr) {
    state->grid = *grid_override;
  } else {
    geom::Box bounds = state->points->Bounds();
    bounds.Extend(state->regions->Bounds());
    state->grid = raster::Grid::Covering(bounds);
  }
  state->point_index.emplace(state->points->locs.data(), state->points->fare.data(),
                             state->points->size(), state->grid);
  return state;
}

std::shared_ptr<const EngineState> BuildEngineState(data::PointSet points,
                                                    data::RegionSet regions) {
  return BuildEngineState(
      std::make_shared<const data::PointSet>(std::move(points)),
      std::make_shared<const data::RegionSet>(std::move(regions)));
}

query::QueryProfile MakeAggregateProfile(const EngineState& state, double epsilon,
                                         const ExecHooks& hooks) {
  query::QueryProfile profile;
  profile.num_points = state.points->size();
  profile.num_polygons = state.regions->NumPolygons();
  profile.avg_vertices = state.regions->AvgVertices();
  profile.epsilon = epsilon;
  profile.universe_extent = state.grid.side();
  profile.total_perimeter = state.regions->TotalPerimeter();
  profile.total_polygon_area = state.regions->TotalArea();
  profile.point_index_available = state.point_index.has_value();
  profile.hr_cache_available = static_cast<bool>(hooks.hr_provider);
  return profile;
}

Mode ModeForPlan(query::PlanKind plan) {
  switch (plan) {
    case query::PlanKind::kActJoin:
      return Mode::kAct;
    case query::PlanKind::kPointIndexJoin:
      return Mode::kPointIndex;
    case query::PlanKind::kCanvasBrj:
      return Mode::kCanvasBrj;
    case query::PlanKind::kExactRStar:
      return Mode::kExact;
  }
  return Mode::kExact;
}

void RunMaybeParallel(const ExecHooks& hooks, size_t n,
                      const std::function<void(size_t)>& fn) {
  if (!hooks.parallel_for || n <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const size_t chunk = hooks.max_fanout == 0 ? n : hooks.max_fanout;
  // Chunks run back to back, so at most `chunk` iterations are in flight
  // at once; the iteration->result mapping (and thus every merge order
  // downstream) is unchanged by the cap.
  for (size_t start = 0; start < n; start += chunk) {
    const size_t len = std::min(chunk, n - start);
    if (len == 1) {
      fn(start);
    } else {
      hooks.parallel_for(len, [&](size_t i) { fn(start + i); });
    }
  }
}

query::PlanKind ResolveAggregatePlan(query::PlanKind optimizer_choice,
                                     join::AggKind agg, Attr attr, double epsilon,
                                     Mode mode) {
  query::PlanKind plan = optimizer_choice;
  switch (mode) {
    case Mode::kAuto:
      break;
    case Mode::kAct:
      plan = query::PlanKind::kActJoin;
      break;
    case Mode::kPointIndex:
      plan = query::PlanKind::kPointIndexJoin;
      break;
    case Mode::kCanvasBrj:
      plan = query::PlanKind::kCanvasBrj;
      break;
    case Mode::kExact:
      plan = query::PlanKind::kExactRStar;
      break;
  }
  if (epsilon <= 0.0) plan = query::PlanKind::kExactRStar;
  // The point index stores prefix sums of one attribute column (fare); a
  // SUM/AVG over another column cannot be answered from it. Reroute to the
  // ACT join, which aggregates any column at the same distance bound.
  if (plan == query::PlanKind::kPointIndexJoin && agg != join::AggKind::kCount &&
      attr == Attr::kPassengers) {
    plan = query::PlanKind::kActJoin;
  }
  return plan;
}

void RowsFromRegionAggregates(const std::vector<join::CellAggregate>& per_region,
                              join::AggKind agg, std::vector<AggregateRow>* rows) {
  rows->resize(per_region.size());
  for (size_t r = 0; r < per_region.size(); ++r) {
    const join::CellAggregate& a = per_region[r];
    double value = 0.0, lo = 0.0, hi = 0.0;
    if (agg == join::AggKind::kCount) {
      const join::ResultRange range = join::CountRange(a);
      value = range.estimate;
      lo = range.lo;
      hi = range.hi;
    } else if (agg == join::AggKind::kSum) {
      const join::ResultRange range = join::SumRange(a);
      value = range.estimate;
      lo = range.lo;
      hi = range.hi;
    } else {  // AVG
      value = a.count > 0 ? a.SumValue() / a.count : 0.0;
      lo = hi = value;
    }
    (*rows)[r] = {static_cast<uint32_t>(r), value, lo, hi};
  }
}

std::shared_ptr<const raster::HierarchicalRaster> HrForPolygon(
    const EngineState& state, const ExecHooks& hooks, size_t poly_index,
    const geom::Polygon& poly, double epsilon) {
  if (hooks.hr_provider) return hooks.hr_provider(poly_index, poly, epsilon);
  return std::make_shared<raster::HierarchicalRaster>(
      raster::HierarchicalRaster::BuildEpsilon(poly, state.grid, epsilon));
}

AggregateAnswer ExecuteAggregate(const EngineState& state, join::AggKind agg,
                                 Attr attr, double epsilon, Mode mode,
                                 const ExecHooks& hooks) {
  DBSA_CHECK(!state.regions->polys.empty());
  const join::JoinInput in = state.MakeInput(attr);
  AggregateAnswer answer;

  const query::QueryProfile profile = MakeAggregateProfile(state, epsilon, hooks);
  const query::PlanChoice choice = query::ChoosePlan(profile);
  const query::PlanKind plan =
      ResolveAggregatePlan(choice.kind, agg, attr, epsilon, mode);

  answer.stats.plan = plan;
  answer.stats.explain = choice.explain;

  Timer timer;
  switch (plan) {
    case query::PlanKind::kActJoin: {
      join::ActJoinOptions opts;
      opts.epsilon = epsilon;
      const join::JoinStats stats = join::ActJoin(in, agg, state.grid, opts);
      answer.stats.pip_tests = stats.pip_tests;
      answer.stats.index_bytes = stats.index_bytes;
      answer.stats.hr_level = state.grid.LevelForEpsilon(epsilon);
      answer.stats.achieved_epsilon =
          state.grid.AchievedEpsilon(answer.stats.hr_level);
      answer.rows.resize(stats.value.size());
      for (size_t r = 0; r < stats.value.size(); ++r) {
        answer.rows[r] = {static_cast<uint32_t>(r), stats.value[r], stats.value[r],
                          stats.value[r]};
      }
      break;
    }
    case query::PlanKind::kPointIndexJoin: {
      DBSA_CHECK(state.point_index.has_value());
      DBSA_CHECK(agg == join::AggKind::kCount || agg == join::AggKind::kSum ||
                 agg == join::AggKind::kAvg);
      answer.stats.hr_level = state.grid.LevelForEpsilon(epsilon);
      answer.stats.achieved_epsilon =
          state.grid.AchievedEpsilon(answer.stats.hr_level);
      // Stage 1 — independent per polygon (HR query cells + prefix-sum
      // lookups), so the hook may fan it out across threads.
      const std::vector<geom::Polygon>& polys = state.regions->polys;
      std::vector<join::CellAggregate> per_poly(polys.size());
      const auto one_poly = [&](size_t j) {
        const std::shared_ptr<const raster::HierarchicalRaster> hr =
            HrForPolygon(state, hooks, j, polys[j], epsilon);
        per_poly[j] = state.point_index->QueryCells(*hr,
                                                    join::SearchStrategy::kRadixSpline);
      };
      RunMaybeParallel(hooks, polys.size(), one_poly);
      // Stage 2 — combine into regions serially in polygon order, keeping
      // floating-point accumulation order independent of the scheduling
      // above (the service's determinism guarantee). The boundary partials
      // give the Section 6 result range.
      std::vector<join::CellAggregate> per_region(state.regions->num_regions);
      for (size_t j = 0; j < polys.size(); ++j) {
        answer.stats.query_cells += per_poly[j].query_cells;
        per_region[state.regions->region_of[j]].Merge(per_poly[j]);
      }
      answer.stats.index_bytes =
          state.point_index->MemoryBytes(join::SearchStrategy::kRadixSpline);
      RowsFromRegionAggregates(per_region, agg, &answer.rows);
      break;
    }
    case query::PlanKind::kCanvasBrj: {
      canvas::BrjOptions opts;
      opts.epsilon = epsilon;
      const canvas::BrjResult brj = canvas::BoundedRasterJoin(
          in.points, in.attrs, in.num_points, state.regions->polys,
          state.regions->region_of, state.regions->num_regions,
          state.grid.universe(), opts);
      answer.stats.achieved_epsilon = epsilon;
      answer.rows.resize(state.regions->num_regions);
      for (size_t r = 0; r < state.regions->num_regions; ++r) {
        double value = 0.0;
        if (agg == join::AggKind::kCount) {
          value = brj.count[r];
        } else if (agg == join::AggKind::kSum) {
          value = brj.sum[r];
        } else if (agg == join::AggKind::kAvg) {
          value = brj.count[r] > 0 ? brj.sum[r] / brj.count[r] : 0.0;
        } else {
          DBSA_CHECK(false);  // MIN/MAX not supported on the count canvas.
        }
        answer.rows[r] = {static_cast<uint32_t>(r), value, value, value};
      }
      break;
    }
    case query::PlanKind::kExactRStar: {
      const join::JoinStats stats = join::RStarMbrJoin(in, agg);
      answer.stats.pip_tests = stats.pip_tests;
      answer.stats.index_bytes = stats.index_bytes;
      answer.stats.achieved_epsilon = 0.0;
      answer.rows.resize(stats.value.size());
      for (size_t r = 0; r < stats.value.size(); ++r) {
        answer.rows[r] = {static_cast<uint32_t>(r), stats.value[r], stats.value[r],
                          stats.value[r]};
      }
      break;
    }
  }
  answer.stats.elapsed_ms = timer.Millis();
  return answer;
}

join::ResultRange ExecuteCountInPolygon(const EngineState& state,
                                        const geom::Polygon& poly, double epsilon,
                                        const ExecHooks& hooks) {
  return ExecuteCount(state, poly, query::ErrorBound::Absolute(epsilon), hooks)
      .range;
}

std::vector<uint32_t> ExecuteSelectInPolygon(const EngineState& state,
                                             const geom::Polygon& poly, double epsilon,
                                             const ExecHooks& hooks) {
  return ExecuteSelect(state, poly, query::ErrorBound::Absolute(epsilon), hooks)
      .ids;
}

// ---- v2 executors: the typed distance-bound contract -------------------

AggregateAnswer ExecuteAggregate(const EngineState& state, join::AggKind agg,
                                 Attr attr, const query::ErrorBound& bound,
                                 Mode mode, const ExecHooks& hooks) {
  // Effective epsilon 0 routes to the exact plan inside
  // ResolveAggregatePlan; pinning the mode as well just makes the contract
  // explicit in the EXPLAIN output.
  return ExecuteAggregate(state, agg, attr, bound.EffectiveEpsilon(state.grid),
                          bound.exact() ? Mode::kExact : mode, hooks);
}

namespace {

/// Shared brute-force stage of the kExact ad-hoc queries: visits every
/// point inside the polygon, ascending by row id. The bounding-box
/// prefilter keeps the PIP count honest in `pip_tests`.
template <typename Fn>
size_t ForEachInsidePoint(const EngineState& state, const geom::Polygon& poly,
                          Fn&& fn) {
  const std::vector<geom::Point>& locs = state.points->locs;
  const geom::Box& bounds = poly.bounds();
  size_t pip_tests = 0;
  for (uint32_t i = 0; i < locs.size(); ++i) {
    const geom::Point& p = locs[i];
    if (p.x < bounds.min.x || p.x > bounds.max.x || p.y < bounds.min.y ||
        p.y > bounds.max.y) {
      continue;
    }
    ++pip_tests;
    if (poly.Contains(p)) fn(i);
  }
  return pip_tests;
}

}  // namespace

CountAnswer ExecuteCount(const EngineState& state, const geom::Polygon& poly,
                         const query::ErrorBound& bound, const ExecHooks& hooks) {
  CountAnswer out;
  Timer timer;
  if (bound.exact()) {
    double count = 0.0;
    out.stats.pip_tests =
        ForEachInsidePoint(state, poly, [&](uint32_t) { count += 1.0; });
    out.range.approx = out.range.lo = out.range.hi = out.range.estimate = count;
    out.stats.plan = query::PlanKind::kExactRStar;
  } else {
    DBSA_CHECK(state.point_index.has_value());
    const double epsilon = bound.EffectiveEpsilon(state.grid);
    const std::shared_ptr<const raster::HierarchicalRaster> hr =
        HrForPolygon(state, hooks, kAdHocPolygon, poly, epsilon);
    const join::CellAggregate agg =
        state.point_index->QueryCells(*hr, join::SearchStrategy::kRadixSpline);
    out.range = join::CountRange(agg);
    out.stats.plan = query::PlanKind::kPointIndexJoin;
    out.stats.hr_level = state.grid.LevelForEpsilon(epsilon);
    out.stats.achieved_epsilon = state.grid.AchievedEpsilon(out.stats.hr_level);
    out.stats.query_cells = agg.query_cells;
    out.stats.index_bytes =
        state.point_index->MemoryBytes(join::SearchStrategy::kRadixSpline);
  }
  out.stats.elapsed_ms = timer.Millis();
  return out;
}

SelectAnswer ExecuteSelect(const EngineState& state, const geom::Polygon& poly,
                           const query::ErrorBound& bound,
                           const ExecHooks& hooks) {
  SelectAnswer out;
  Timer timer;
  if (bound.exact()) {
    out.stats.pip_tests =
        ForEachInsidePoint(state, poly, [&](uint32_t i) { out.ids.push_back(i); });
    out.stats.plan = query::PlanKind::kExactRStar;
  } else {
    DBSA_CHECK(state.point_index.has_value());
    const double epsilon = bound.EffectiveEpsilon(state.grid);
    const std::shared_ptr<const raster::HierarchicalRaster> hr =
        HrForPolygon(state, hooks, kAdHocPolygon, poly, epsilon);
    state.point_index->SelectIds(*hr, join::SearchStrategy::kRadixSpline,
                                 &out.ids);
    out.stats.plan = query::PlanKind::kPointIndexJoin;
    out.stats.hr_level = state.grid.LevelForEpsilon(epsilon);
    out.stats.achieved_epsilon = state.grid.AchievedEpsilon(out.stats.hr_level);
    out.stats.query_cells = hr->cells().size();
    out.stats.index_bytes =
        state.point_index->MemoryBytes(join::SearchStrategy::kRadixSpline);
  }
  out.stats.elapsed_ms = timer.Millis();
  return out;
}

}  // namespace dbsa::core
