// Umbrella header for the dbsa library — distance-bounded spatial
// approximations (CIDR'21 reproduction). Include this to get the public
// API: the SpatialEngine façade, the raster approximations, the indexing
// layer, the canvas algebra, and the join executors.

#ifndef DBSA_CORE_DBSA_H_
#define DBSA_CORE_DBSA_H_

// Geometry kernel.
#include "geom/box.h"       // IWYU pragma: export
#include "geom/distance.h"  // IWYU pragma: export
#include "geom/point.h"     // IWYU pragma: export
#include "geom/polygon.h"   // IWYU pragma: export
#include "geom/wkt.h"       // IWYU pragma: export

// Distance-bounded raster approximations.
#include "raster/grid.h"                 // IWYU pragma: export
#include "raster/hierarchical_raster.h"  // IWYU pragma: export
#include "raster/uniform_raster.h"       // IWYU pragma: export

// Indexes over linearized cells.
#include "index/act.h"           // IWYU pragma: export
#include "index/radix_spline.h"  // IWYU pragma: export

// Canvas algebra and BRJ.
#include "canvas/brj.h"  // IWYU pragma: export
#include "canvas/ops.h"  // IWYU pragma: export

// Join executors and result ranges.
#include "join/act_join.h"          // IWYU pragma: export
#include "join/exact_join.h"        // IWYU pragma: export
#include "join/point_index_join.h"  // IWYU pragma: export
#include "join/result_range.h"      // IWYU pragma: export

// Data generators (synthetic NYC-like workloads).
#include "data/regions.h"   // IWYU pragma: export
#include "data/taxi.h"      // IWYU pragma: export
#include "data/workload.h"  // IWYU pragma: export

// Engine façade, its shareable immutable state, and the SFC-sharded
// scatter-gather execution layer.
#include "core/engine.h"         // IWYU pragma: export
#include "core/engine_state.h"   // IWYU pragma: export
#include "core/sharded_state.h"  // IWYU pragma: export

// Concurrent serving layer (thread pool + approximation cache).
#include "service/approx_cache.h"   // IWYU pragma: export
#include "service/query_service.h"  // IWYU pragma: export
#include "service/thread_pool.h"    // IWYU pragma: export

namespace dbsa {

/// Library version.
inline constexpr const char* kVersion = "0.1.0";

}  // namespace dbsa

#endif  // DBSA_CORE_DBSA_H_
