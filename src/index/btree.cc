#include "index/btree.h"

#include <algorithm>

namespace dbsa::index {

StaticBTree StaticBTree::Build(const std::vector<uint64_t>& sorted_keys) {
  StaticBTree t;
  t.num_keys_ = sorted_keys.size();
  t.leaf_keys_ = sorted_keys.data();
  if (sorted_keys.empty()) return t;

  // Each inner level stores, for every group of kFanout children, the
  // separator keys (the max key under each child). Build bottom-up.
  std::vector<std::vector<uint64_t>> levels;  // levels[0] = lowest inner level.
  {
    // Lowest inner level summarises leaf blocks of kFanout keys.
    std::vector<uint64_t> cur;
    for (size_t i = 0; i < sorted_keys.size(); i += kFanout) {
      const size_t end = std::min(i + kFanout, sorted_keys.size());
      cur.push_back(sorted_keys[end - 1]);
    }
    while (cur.size() > 1) {
      levels.push_back(cur);
      std::vector<uint64_t> up;
      for (size_t i = 0; i < cur.size(); i += kFanout) {
        const size_t end = std::min(i + kFanout, cur.size());
        up.push_back(cur[end - 1]);
      }
      cur = std::move(up);
    }
    levels.push_back(cur);  // Root (size 1), kept for uniformity.
  }

  // Lay out root-first.
  t.height_ = static_cast<int>(levels.size());
  for (int h = t.height_ - 1; h >= 0; --h) {
    t.level_offset_.push_back(t.inner_.size());
    t.level_size_.push_back(levels[static_cast<size_t>(h)].size());
    const auto& lv = levels[static_cast<size_t>(h)];
    t.inner_.insert(t.inner_.end(), lv.begin(), lv.end());
  }
  return t;
}

size_t StaticBTree::LowerBoundRank(uint64_t key) const {
  if (num_keys_ == 0) return 0;
  // Descend: at each level find the first block whose separator >= key.
  size_t block = 0;  // Index within the current level.
  for (size_t lv = 0; lv < level_offset_.size(); ++lv) {
    const uint64_t* base = inner_.data() + level_offset_[lv];
    const size_t begin = block * kFanout;
    if (begin >= level_size_[lv]) {
      block = level_size_[lv];  // Past the end.
      continue;
    }
    const size_t end = std::min(begin + kFanout, level_size_[lv]);
    size_t i = begin;
    while (i < end && base[i] < key) ++i;
    block = i;
  }
  // `block` is now the leaf block index.
  const size_t begin = block * kFanout;
  if (begin >= num_keys_) return num_keys_;
  const size_t end = std::min(begin + kFanout, num_keys_);
  const uint64_t* lo = leaf_keys_ + begin;
  const uint64_t* hi = leaf_keys_ + end;
  return static_cast<size_t>(std::lower_bound(lo, hi, key) - leaf_keys_);
}

size_t StaticBTree::UpperBoundRank(uint64_t key) const {
  if (key == UINT64_MAX) return num_keys_;
  return LowerBoundRank(key + 1);
}

}  // namespace dbsa::index
