// Static bulk-loaded B+-tree over sorted 64-bit keys. The paper lists the
// B+-tree as one of the physical representations for linearized cells
// (Section 3); here it returns ranks into the sorted key array so it can
// drive the same prefix-sum aggregation as binary search and RadixSpline.

#ifndef DBSA_INDEX_BTREE_H_
#define DBSA_INDEX_BTREE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dbsa::index {

/// Cache-friendly static B+-tree: nodes are fixed-fanout key blocks laid
/// out level by level in one contiguous vector.
class StaticBTree {
 public:
  static constexpr int kFanout = 32;

  /// Builds over an already-sorted key array (not owned; the caller keeps
  /// it alive, typically inside a SortedKeyArray / PrefixSumIndex).
  static StaticBTree Build(const std::vector<uint64_t>& sorted_keys);

  /// Rank of the first key >= `key` (== sorted position, usable with
  /// PrefixSumIndex::CountBetween / SumBetween).
  size_t LowerBoundRank(uint64_t key) const;

  /// Rank of the first key > `key`.
  size_t UpperBoundRank(uint64_t key) const;

  size_t MemoryBytes() const { return inner_.size() * sizeof(uint64_t); }
  int height() const { return height_; }

 private:
  // Inner levels only; the "leaf level" is the caller's sorted array.
  // levels_[h] = offset of level h in inner_, level 0 = root.
  std::vector<uint64_t> inner_;
  std::vector<size_t> level_offset_;
  std::vector<size_t> level_size_;
  int height_ = 0;
  size_t num_keys_ = 0;
  const uint64_t* leaf_keys_ = nullptr;
};

}  // namespace dbsa::index

#endif  // DBSA_INDEX_BTREE_H_
