#include "index/sorted_array.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"

namespace dbsa::index {

SortedKeyArray SortedKeyArray::Build(std::vector<uint64_t> keys) {
  SortedKeyArray arr;
  std::sort(keys.begin(), keys.end());
  arr.keys_ = std::move(keys);
  return arr;
}

size_t SortedKeyArray::LowerBoundFrom(uint64_t key, size_t begin, size_t end) const {
  // Branch-reduced binary search over [begin, end).
  const uint64_t* base = keys_.data() + begin;
  size_t n = end - begin;
  while (n > 1) {
    const size_t half = n / 2;
    base = (base[half - 1] < key) ? base + half : base;
    n -= half;
  }
  size_t pos = static_cast<size_t>(base - keys_.data());
  if (n == 1 && pos < end && keys_[pos] < key) ++pos;
  return pos;
}

size_t SortedKeyArray::UpperBound(uint64_t key) const {
  if (key == UINT64_MAX) return keys_.size();
  return LowerBound(key + 1);
}

PrefixSumIndex PrefixSumIndex::Build(std::vector<uint64_t> keys,
                                     std::vector<double> values) {
  DBSA_CHECK(keys.size() == values.size());
  const size_t n = keys.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  // Tie-break equal keys by original row: the sorted order (and therefore
  // CollectIds output) becomes the canonical (key, row id) order, which
  // spatially-partitioned executions can reproduce exactly when merging
  // shard-local selections (core/sharded_state.h).
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return keys[a] != keys[b] ? keys[a] < keys[b] : a < b;
  });

  std::vector<uint64_t> sorted_keys(n);
  PrefixSumIndex idx;
  idx.prefix_.resize(n + 1);
  idx.prefix_comp_.resize(n + 1);
  idx.prefix_[0] = 0.0;
  idx.prefix_comp_[0] = 0.0;
  idx.ids_.resize(n);
  // The prefix sums accumulate through error-free transformations: each
  // entry is a compensated pair, so range sums (pair differences) are
  // exact rather than rounded-at-every-prefix — see SumPairBetween.
  TwoDouble run;
  for (size_t i = 0; i < n; ++i) {
    sorted_keys[i] = keys[order[i]];
    idx.ids_[i] = static_cast<uint32_t>(order[i]);
    run = AddDouble(run, values[order[i]]);
    idx.prefix_[i + 1] = run.hi;
    idx.prefix_comp_[i + 1] = run.lo;
  }
  SortedKeyArray arr;
  arr = SortedKeyArray::Build(std::move(sorted_keys));  // Already sorted; cheap.
  idx.keys_ = std::move(arr);
  return idx;
}

PrefixSumIndex PrefixSumIndex::FromParts(std::vector<uint64_t> sorted_keys,
                                         std::vector<double> prefix,
                                         std::vector<double> prefix_comp,
                                         std::vector<uint32_t> ids) {
  const size_t n = sorted_keys.size();
  DBSA_CHECK(prefix.size() == n + 1);
  DBSA_CHECK(prefix_comp.size() == n + 1);
  DBSA_CHECK(ids.size() == n);
  DBSA_CHECK(std::is_sorted(sorted_keys.begin(), sorted_keys.end()));
  PrefixSumIndex idx;
  idx.keys_ = SortedKeyArray::Build(std::move(sorted_keys));
  idx.prefix_ = std::move(prefix);
  idx.prefix_comp_ = std::move(prefix_comp);
  idx.ids_ = std::move(ids);
  return idx;
}

size_t PrefixSumIndex::RangeCount(uint64_t lo_key, uint64_t hi_key) const {
  const size_t lo = keys_.LowerBound(lo_key);
  const size_t hi = keys_.UpperBound(hi_key);
  return CountBetween(lo, hi);
}

double PrefixSumIndex::RangeSum(uint64_t lo_key, uint64_t hi_key) const {
  const size_t lo = keys_.LowerBound(lo_key);
  const size_t hi = keys_.UpperBound(hi_key);
  return SumBetween(lo, hi);
}

}  // namespace dbsa::index
