// Sorted-array point index with prefix-sum aggregates — the physical
// representation of Section 3's "Point Indexing": points become sorted
// 1-D cell keys; COUNT/SUM over a query cell's key range costs two
// searches (Ho et al., SIGMOD'97). The searches themselves are pluggable
// (binary search here, RadixSpline / B+-tree elsewhere).

#ifndef DBSA_INDEX_SORTED_ARRAY_H_
#define DBSA_INDEX_SORTED_ARRAY_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/compensated.h"

namespace dbsa::index {

/// Sorted key array with branch-reduced binary search.
class SortedKeyArray {
 public:
  SortedKeyArray() = default;

  /// Takes ownership, sorts if needed.
  static SortedKeyArray Build(std::vector<uint64_t> keys);

  const std::vector<uint64_t>& keys() const { return keys_; }
  size_t size() const { return keys_.size(); }

  /// Index of the first key >= `key`.
  size_t LowerBound(uint64_t key) const { return LowerBoundFrom(key, 0, keys_.size()); }

  /// Index of the first key > `key`.
  size_t UpperBound(uint64_t key) const;

  /// Lower bound restricted to [begin, end) — used with learned-index
  /// search windows.
  size_t LowerBoundFrom(uint64_t key, size_t begin, size_t end) const;

  size_t MemoryBytes() const { return keys_.size() * sizeof(uint64_t); }

 private:
  std::vector<uint64_t> keys_;
};

/// Sorted keys plus prefix sums of an attribute: range COUNT and SUM in
/// O(search). The positions returned by any search strategy over keys()
/// can be fed to CountBetween / SumBetween. The sort permutation is kept,
/// so selections can map positions back to original row ids.
class PrefixSumIndex {
 public:
  /// Builds from parallel key/value arrays (reordered together).
  static PrefixSumIndex Build(std::vector<uint64_t> keys, std::vector<double> values);

  /// Reassembles an index from its frozen representation (snapshot load,
  /// src/snapshot/). The inputs must be EXACTLY what Build produced:
  /// `sorted_keys` ascending, both prefix arrays of size n+1 with
  /// entry 0 == 0.0, and `ids` an n-sized row-id permutation. Untrusted
  /// bytes are validated by SnapshotReader BEFORE this runs; the checks
  /// here guard programming errors, they are not a parse path.
  static PrefixSumIndex FromParts(std::vector<uint64_t> sorted_keys,
                                  std::vector<double> prefix,
                                  std::vector<double> prefix_comp,
                                  std::vector<uint32_t> ids);

  /// Original row id stored at sorted position `pos`.
  uint32_t IdAt(size_t pos) const { return ids_[pos]; }

  /// Appends the original row ids in [lo_pos, hi_pos) to `out`.
  void CollectIds(size_t lo_pos, size_t hi_pos, std::vector<uint32_t>* out) const {
    for (size_t i = lo_pos; i < hi_pos; ++i) out->push_back(ids_[i]);
  }

  const SortedKeyArray& keys() const { return keys_; }
  size_t size() const { return keys_.size(); }

  /// Frozen representation, exposed for serialization (src/snapshot/):
  /// the compensated prefix arrays (size n+1, entry 0 == 0.0) and the
  /// sort permutation. Round-tripping these three arrays plus keys()
  /// through FromParts reproduces the index bit-for-bit.
  const std::vector<double>& prefix() const { return prefix_; }
  const std::vector<double>& prefix_comp() const { return prefix_comp_; }
  const std::vector<uint32_t>& ids() const { return ids_; }

  /// COUNT of keys in [lo_key, hi_key] (inclusive).
  size_t RangeCount(uint64_t lo_key, uint64_t hi_key) const;

  /// SUM of values for keys in [lo_key, hi_key] (inclusive).
  double RangeSum(uint64_t lo_key, uint64_t hi_key) const;

  /// Aggregates between precomputed positions [lo_pos, hi_pos).
  size_t CountBetween(size_t lo_pos, size_t hi_pos) const {
    return hi_pos > lo_pos ? hi_pos - lo_pos : 0;
  }
  double SumBetween(size_t lo_pos, size_t hi_pos) const {
    return SumPairBetween(lo_pos, hi_pos).Rounded();
  }

  /// Range SUM as a compensated pair. The prefix array is accumulated
  /// through error-free transformations, so the pair equals the EXACT sum
  /// of the range's values whenever the running sums fit the ~106-bit
  /// pair window — which is what lets spatially-partitioned executions
  /// merge shard partials into byte-identical totals for non-dyadic
  /// attribute columns (core/sharded_state.h merge identity).
  TwoDouble SumPairBetween(size_t lo_pos, size_t hi_pos) const {
    if (hi_pos <= lo_pos) return TwoDouble{};
    return SubPair({prefix_[hi_pos], prefix_comp_[hi_pos]},
                   {prefix_[lo_pos], prefix_comp_[lo_pos]});
  }

  size_t MemoryBytes() const {
    return keys_.MemoryBytes() + prefix_.size() * sizeof(double) +
           prefix_comp_.size() * sizeof(double) + ids_.size() * sizeof(uint32_t);
  }

 private:
  SortedKeyArray keys_;
  std::vector<double> prefix_;       ///< Leading parts: sum of values[0..i).
  std::vector<double> prefix_comp_;  ///< Trailing (compensation) parts.
  std::vector<uint32_t> ids_;        ///< Sort permutation (original row ids).
};

}  // namespace dbsa::index

#endif  // DBSA_INDEX_SORTED_ARRAY_H_
