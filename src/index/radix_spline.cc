#include "index/radix_spline.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace dbsa::index {

RadixSpline RadixSpline::Build(const std::vector<uint64_t>& keys, int num_radix_bits,
                               size_t spline_error) {
  DBSA_CHECK(num_radix_bits > 0 && num_radix_bits <= 30);
  RadixSpline rs;
  rs.n_ = keys.size();
  rs.spline_error_ = std::max<size_t>(spline_error, 1);
  if (keys.empty()) {
    rs.radix_table_.assign(2, 0);
    return rs;
  }
  rs.min_key_ = keys.front();
  rs.max_key_ = keys.back();

  // --- Pass 1: greedy spline corridor over (key, first-position) of each
  // distinct key.
  const double err = static_cast<double>(rs.spline_error_);
  auto emit = [&rs](uint64_t k, double p) {
    rs.spline_keys_.push_back(k);
    rs.spline_pos_.push_back(p);
  };

  uint64_t base_key = keys[0];
  double base_pos = 0.0;
  emit(base_key, base_pos);
  double upper = std::numeric_limits<double>::infinity();
  double lower = -std::numeric_limits<double>::infinity();
  uint64_t prev_key = base_key;
  double prev_pos = 0.0;
  bool have_candidate = false;

  for (size_t i = 1; i < rs.n_; ++i) {
    if (keys[i] == prev_key) continue;  // First position per distinct key.
    const uint64_t k = keys[i];
    const double p = static_cast<double>(i);
    const double dx = static_cast<double>(k - base_key);
    const double hi = (p + err - base_pos) / dx;
    const double lo = (p - err - base_pos) / dx;
    if (lo > upper || hi < lower) {
      // Corridor broken: the previous point becomes a spline point.
      emit(prev_key, prev_pos);
      base_key = prev_key;
      base_pos = prev_pos;
      const double dx2 = static_cast<double>(k - base_key);
      upper = (p + err - base_pos) / dx2;
      lower = (p - err - base_pos) / dx2;
    } else {
      upper = std::min(upper, hi);
      lower = std::max(lower, lo);
    }
    prev_key = k;
    prev_pos = p;
    have_candidate = true;
  }
  if (have_candidate &&
      (rs.spline_keys_.empty() || rs.spline_keys_.back() != prev_key)) {
    emit(prev_key, prev_pos);
  }

  // --- Pass 2: measure the actual max interpolation error over all
  // distinct keys (the greedy corridor can exceed the configured error by
  // up to 2x at segment boundaries); lookups use the measured bound,
  // which makes the search window provably correct.
  {
    size_t seg = 1;
    double max_err = 1.0;
    uint64_t prev = keys[0];
    for (size_t i = 1; i < rs.n_; ++i) {
      if (keys[i] == prev) continue;
      prev = keys[i];
      while (seg + 1 < rs.spline_keys_.size() && rs.spline_keys_[seg] < keys[i]) {
        ++seg;
      }
      if (seg >= rs.spline_keys_.size()) break;
      const uint64_t x0 = rs.spline_keys_[seg - 1];
      const uint64_t x1 = rs.spline_keys_[seg];
      const double y0 = rs.spline_pos_[seg - 1];
      const double y1 = rs.spline_pos_[seg];
      const double t = x1 == x0 ? 0.0
                                : static_cast<double>(keys[i] - x0) /
                                      static_cast<double>(x1 - x0);
      const double est = y0 + t * (y1 - y0);
      max_err = std::max(max_err, std::fabs(est - static_cast<double>(i)));
    }
    rs.spline_error_ = static_cast<size_t>(max_err) + 1;
  }

  // --- Pass 3: radix table over the spline keys.
  int key_bits = 64 - __builtin_clzll(rs.max_key_ | 1);
  rs.shift_ = std::max(key_bits - num_radix_bits, 0);
  const size_t table_size = (static_cast<size_t>(1) << num_radix_bits) + 1;
  rs.radix_table_.assign(table_size, 0);
  // radix_table_[p] = first spline index whose (key >> shift) >= p.
  size_t s = 0;
  for (size_t p = 0; p < table_size; ++p) {
    while (s < rs.spline_keys_.size() && (rs.spline_keys_[s] >> rs.shift_) < p) ++s;
    rs.radix_table_[p] = static_cast<uint32_t>(s);
  }
  return rs;
}

size_t RadixSpline::FindSplineSegment(uint64_t key) const {
  const uint64_t prefix = key >> shift_;
  const size_t p = std::min<size_t>(prefix, radix_table_.size() - 2);
  size_t begin = radix_table_[p];
  size_t end = std::min<size_t>(radix_table_[p + 1] + 1, spline_keys_.size());
  begin = begin > 0 ? begin - 1 : 0;
  // First spline key >= key within [begin, end).
  const auto it = std::lower_bound(spline_keys_.begin() + begin,
                                   spline_keys_.begin() + end, key);
  size_t idx = static_cast<size_t>(it - spline_keys_.begin());
  if (idx >= spline_keys_.size()) idx = spline_keys_.size() - 1;
  if (idx == 0) idx = spline_keys_.size() > 1 ? 1 : 0;
  return idx;
}

double RadixSpline::EstimatePosition(uint64_t key) const {
  if (n_ == 0) return 0.0;
  if (key <= min_key_) return 0.0;
  if (key >= max_key_) return spline_pos_.back();
  const size_t seg = FindSplineSegment(key);
  if (seg == 0) return spline_pos_[0];
  const uint64_t x0 = spline_keys_[seg - 1];
  const uint64_t x1 = spline_keys_[seg];
  const double y0 = spline_pos_[seg - 1];
  const double y1 = spline_pos_[seg];
  if (x1 == x0) return y0;
  const double t = static_cast<double>(key - x0) / static_cast<double>(x1 - x0);
  return y0 + t * (y1 - y0);
}

SearchBound RadixSpline::Lookup(uint64_t key) const {
  if (n_ == 0) return {0, 0};
  if (key <= min_key_) return {0, std::min<size_t>(1, n_)};
  if (key > max_key_) return {n_, n_};
  const size_t seg = FindSplineSegment(key);
  const size_t seg_lo = seg > 0 ? static_cast<size_t>(spline_pos_[seg - 1]) : 0;
  // spline_pos_ stores first-occurrence positions, so for key <= spline
  // key x1 the answer is at most pos(x1); that bound stays correct even
  // under long duplicate runs (where the +/- error window alone would not).
  const size_t seg_hi = static_cast<size_t>(spline_pos_[seg]);
  // Interpolate within the segment found above (inline EstimatePosition,
  // avoiding a second segment search).
  double est;
  {
    const uint64_t x0 = spline_keys_[seg - 1];
    const uint64_t x1 = spline_keys_[seg];
    const double y0 = spline_pos_[seg - 1];
    const double y1 = spline_pos_[seg];
    est = (x1 == x0) ? y0
                     : y0 + static_cast<double>(key - x0) /
                                static_cast<double>(x1 - x0) * (y1 - y0);
  }
  const double err = static_cast<double>(spline_error_);
  const double lo_d = est - err;
  SearchBound b;
  b.begin = std::max<size_t>(seg_lo, lo_d > 0 ? static_cast<size_t>(lo_d) : 0);
  // The +err window covers every key present in the data; a long run of
  // duplicates just below an absent lookup key can push the true position
  // past it — callers detect "not found within window" (position == end)
  // and fall back to searching [end, n). See PointIndex::LowerBound.
  b.end = std::min<size_t>(
      {n_, seg_hi + 1, static_cast<size_t>(std::max(est + err, 0.0)) + 2});
  if (b.end < b.begin) b.begin = b.end;
  return b;
}

}  // namespace dbsa::index
