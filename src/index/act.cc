#include "index/act.h"

#include "util/check.h"

namespace dbsa::index {

namespace {
constexpr uint32_t kBoundaryBit = 0x80000000u;
}  // namespace

ActIndex::ActIndex(int levels_per_node) : levels_per_node_(levels_per_node) {
  DBSA_CHECK(levels_per_node >= 1 && levels_per_node <= 8);
  DBSA_CHECK(raster::CellId::kMaxLevel % levels_per_node == 0);
  slots_per_node_ = 1u << (2 * levels_per_node);
  nodes_.resize(slots_per_node_);  // Root = node 0.
}

uint32_t ActIndex::EnsureChild(uint32_t node, uint32_t slot_idx) {
  Slot& slot = nodes_[static_cast<size_t>(node) * slots_per_node_ + slot_idx];
  if (slot.child == 0) {
    const uint32_t new_node = static_cast<uint32_t>(nodes_.size() / slots_per_node_);
    nodes_.resize(nodes_.size() + slots_per_node_);
    // resize may invalidate `slot`; re-fetch.
    nodes_[static_cast<size_t>(node) * slots_per_node_ + slot_idx].child = new_node + 1;
    return new_node;
  }
  return slot.child - 1;
}

void ActIndex::PushValue(uint32_t node, uint32_t slot_idx, uint32_t value,
                         bool boundary) {
  DBSA_DCHECK((value & kBoundaryBit) == 0);
  ValueEntry entry;
  entry.payload = value | (boundary ? kBoundaryBit : 0);
  Slot& slot = nodes_[static_cast<size_t>(node) * slots_per_node_ + slot_idx];
  entry.next = slot.value;
  values_.push_back(entry);
  slot.value = static_cast<uint32_t>(values_.size());  // Index + 1.
}

void ActIndex::Insert(const raster::CellId& cell, uint32_t value, bool boundary) {
  const int level = cell.level();
  DBSA_CHECK(level >= 1);  // A level-0 cell would cover the whole universe.
  const uint64_t prefix = cell.prefix();

  uint32_t node = 0;
  int base = 0;  // The current node spans quad levels (base, base+s].
  const int s = levels_per_node_;
  while (level > base + s) {
    const uint32_t slot_idx = static_cast<uint32_t>(
        (prefix >> (2 * (level - base - s))) & (slots_per_node_ - 1));
    node = EnsureChild(node, slot_idx);
    base += s;
  }
  // The cell's level is in (base, base+s]: it covers 4^(base+s-level)
  // slots of this node; replicate the value over that slot range.
  const int rem = level - base;                  // 1..s
  const int expand = s - rem;                    // Levels below the cell.
  const uint64_t cell_bits = prefix & ((1ull << (2 * rem)) - 1);
  const uint32_t first_slot = static_cast<uint32_t>(cell_bits << (2 * expand));
  const uint32_t span = 1u << (2 * expand);
  for (uint32_t i = 0; i < span; ++i) {
    PushValue(node, first_slot + i, value, boundary);
  }
}

void ActIndex::Lookup(uint64_t leaf_key, std::vector<ActMatch>* out) const {
  out->clear();
  uint32_t node = 0;
  int base = 0;
  const int s = levels_per_node_;
  const int max_level = raster::CellId::kMaxLevel;
  while (true) {
    const int shift = 2 * (max_level - base - s);
    const uint32_t slot_idx =
        static_cast<uint32_t>((leaf_key >> shift) & (slots_per_node_ - 1));
    const Slot& slot = nodes_[static_cast<size_t>(node) * slots_per_node_ + slot_idx];
    for (uint32_t v = slot.value; v != 0; v = values_[v - 1].next) {
      const uint32_t payload = values_[v - 1].payload;
      out->push_back({payload & ~kBoundaryBit, (payload & kBoundaryBit) != 0});
    }
    if (slot.child == 0 || base + s >= max_level) break;
    node = slot.child - 1;
    base += s;
  }
}

bool ActIndex::LookupFirst(uint64_t leaf_key, ActMatch* out) const {
  uint32_t node = 0;
  int base = 0;
  const int s = levels_per_node_;
  const int max_level = raster::CellId::kMaxLevel;
  while (true) {
    const int shift = 2 * (max_level - base - s);
    const uint32_t slot_idx =
        static_cast<uint32_t>((leaf_key >> shift) & (slots_per_node_ - 1));
    const Slot& slot = nodes_[static_cast<size_t>(node) * slots_per_node_ + slot_idx];
    if (slot.value != 0) {
      const uint32_t payload = values_[slot.value - 1].payload;
      out->value = payload & ~kBoundaryBit;
      out->boundary = (payload & kBoundaryBit) != 0;
      return true;
    }
    if (slot.child == 0 || base + s >= max_level) return false;
    node = slot.child - 1;
    base += s;
  }
}

}  // namespace dbsa::index
