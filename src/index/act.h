// Adaptive Cell Trie (Kipf et al., EDBT'20/ICDE'18, Section 3 of the
// paper): a radix trie over linearized hierarchical-raster cells. Larger
// cells live closer to the root, so coarse (interior) cells resolve in
// very few node hops; keys are implicit in the trie paths (prefix
// compression). A cell whose level falls inside a node's span is
// replicated across the slots it covers — ACT's memory-for-speed trade.

#ifndef DBSA_INDEX_ACT_H_
#define DBSA_INDEX_ACT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "raster/cell_id.h"

namespace dbsa::index {

/// One match returned by a lookup.
struct ActMatch {
  uint32_t value = 0;    ///< Caller-defined payload (e.g. polygon id).
  bool boundary = false; ///< Whether the matched cell was a boundary cell.
};

/// Radix trie over CellIds; multiple values may cover the same point (e.g.
/// conservative boundary cells of adjacent polygons).
class ActIndex {
 public:
  /// levels_per_node quadtree levels are consumed per trie node (fanout
  /// 4^levels_per_node). Must divide CellId::kMaxLevel.
  explicit ActIndex(int levels_per_node = 3);

  /// Inserts a cell with a payload. Cells of one payload must be disjoint;
  /// cells of different payloads may overlap.
  void Insert(const raster::CellId& cell, uint32_t value, bool boundary);

  /// Collects all cells covering the finest-level key (at most one per
  /// payload for disjoint per-payload cells).
  void Lookup(uint64_t leaf_key, std::vector<ActMatch>* out) const;

  /// First match only (fast path for tiling region sets where lookups hit
  /// at most one region).
  bool LookupFirst(uint64_t leaf_key, ActMatch* out) const;

  size_t NumNodes() const { return nodes_.size() / slots_per_node_; }
  size_t NumValues() const { return values_.size(); }
  size_t MemoryBytes() const {
    return nodes_.size() * sizeof(Slot) + values_.size() * sizeof(ValueEntry);
  }
  int levels_per_node() const { return levels_per_node_; }

 private:
  struct Slot {
    uint32_t child = 0;  ///< 0 = none, else node index + 1.
    uint32_t value = 0;  ///< 0 = none, else values_ index + 1 (list head).
  };
  struct ValueEntry {
    uint32_t payload;  ///< value | boundary flag in the MSB.
    uint32_t next;     ///< 0 = end, else values_ index + 1.
  };

  uint32_t EnsureChild(uint32_t node, uint32_t slot_idx);
  void PushValue(uint32_t node, uint32_t slot_idx, uint32_t value, bool boundary);

  int levels_per_node_;
  uint32_t slots_per_node_;
  // Flat node pool: node i occupies slots_ [i*slots_per_node_, ...).
  std::vector<Slot> nodes_;
  std::vector<ValueEntry> values_;
};

}  // namespace dbsa::index

#endif  // DBSA_INDEX_ACT_H_
