// RadixSpline learned index (Kipf et al., aiDM@SIGMOD'20), as used by the
// paper in Section 3: a single-pass greedy spline over (key, position)
// plus a radix table over key prefixes. Lookups return a narrow position
// window that the caller searches (e.g. SortedKeyArray::LowerBoundFrom).

#ifndef DBSA_INDEX_RADIX_SPLINE_H_
#define DBSA_INDEX_RADIX_SPLINE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dbsa::index {

/// Half-open position window [begin, end) guaranteed to contain the
/// lower-bound position of the looked-up key.
struct SearchBound {
  size_t begin = 0;
  size_t end = 0;
};

/// Single-pass learned index over a sorted key array (not owned).
class RadixSpline {
 public:
  /// Builds over sorted keys. num_radix_bits is the prefix-table width
  /// (the paper uses 25 at 1.2B keys; scale down with data size);
  /// spline_error is the max position error of the spline (paper: 32).
  static RadixSpline Build(const std::vector<uint64_t>& sorted_keys,
                           int num_radix_bits, size_t spline_error);

  /// Window containing LowerBound(key).
  SearchBound Lookup(uint64_t key) const;

  /// Interpolated position estimate (for diagnostics).
  double EstimatePosition(uint64_t key) const;

  size_t NumSplinePoints() const { return spline_keys_.size(); }
  size_t MemoryBytes() const {
    return spline_keys_.size() * (sizeof(uint64_t) + sizeof(double)) +
           radix_table_.size() * sizeof(uint32_t);
  }

 private:
  // Spline segment index bracketing `key` (index of the right endpoint).
  size_t FindSplineSegment(uint64_t key) const;

  size_t n_ = 0;
  size_t spline_error_ = 32;
  uint64_t min_key_ = 0;
  uint64_t max_key_ = 0;
  int shift_ = 0;
  std::vector<uint64_t> spline_keys_;
  std::vector<double> spline_pos_;
  std::vector<uint32_t> radix_table_;
};

}  // namespace dbsa::index

#endif  // DBSA_INDEX_RADIX_SPLINE_H_
