// Per-query distributed tracing. A QueryService::Submit mints a
// TraceContext (128-bit trace id + 64-bit span id); every serving stage
// (admission, cache lookup, HR build, route, per-shard roundtrip,
// execute, gather, merge) records a TraceSpan with wall-clock duration
// into the query's QueryTrace. The trace id rides ScatterRequest (wire
// v3) so shard-server-side spans join the same trace, and surfaces in
// BoundReport so callers can correlate results with traces.
//
// Tracing is observe-only by construction: spans carry timings, never
// data, and nothing here feeds back into execution. QueryTrace is
// mutex-protected because shard fan-out records spans from pool threads;
// the lock is per-query (never shared across queries) and only taken
// when tracing is enabled.
//
// Like the rest of src/telemetry/, this header depends only on std and
// util/ (the annotated lock wrappers): core and service include it, it
// includes neither.

#ifndef DBSA_TELEMETRY_TRACE_H_
#define DBSA_TELEMETRY_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "util/thread_annotations.h"

namespace dbsa::telemetry {

/// Identity of one traced query. trace_hi/trace_lo form the 128-bit
/// trace id (never zero for a minted context); span_id identifies the
/// root span. Zero-valued contexts mean "untraced" on the wire.
struct TraceContext {
  uint64_t trace_hi = 0;
  uint64_t trace_lo = 0;
  uint64_t span_id = 0;

  bool valid() const { return (trace_hi | trace_lo) != 0; }
};

/// Mints a fresh context. Ids are process-unique and non-deterministic
/// across runs (seeded from the clock and thread identity) — they name
/// traces, they never influence execution.
TraceContext NewTraceContext();

/// 32 lowercase hex chars, e.g. "00c0ffee…"; "untraced" for the zero id.
std::string TraceIdHex(uint64_t hi, uint64_t lo);

/// One timed stage. `shard` is -1 for unscoped stages, >= 0 for
/// per-shard spans (e.g. shard_roundtrip). `correlation`, when nonzero,
/// is the wire correlation id of the in-flight request the span timed —
/// it joins a client span to the exact multiplexed frame that carried
/// it (grep the id across a connection dump or a hedged pair).
struct TraceSpan {
  std::string stage;
  int shard = -1;
  double start_ms = 0.0;     ///< Offset from the trace epoch.
  double duration_ms = 0.0;
  uint64_t correlation = 0;
};

/// Span collector for one query. Created in QueryService::RunQuery when
/// tracing is enabled and threaded through ExecHooks; stages append via
/// Record (directly or through SpanTimer).
class QueryTrace {
 public:
  explicit QueryTrace(TraceContext ctx)
      : ctx_(ctx), epoch_(std::chrono::steady_clock::now()) {}

  const TraceContext& ctx() const { return ctx_; }

  /// Milliseconds since this trace began.
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  void Record(const char* stage, double start_ms, double duration_ms,
              int shard = -1, uint64_t correlation = 0) {
    dbsa::MutexLock lock(mu_);
    spans_.push_back(TraceSpan{stage, shard, start_ms, duration_ms, correlation});
  }

  /// Snapshot of recorded spans, in recording order.
  std::vector<TraceSpan> spans() const {
    dbsa::MutexLock lock(mu_);
    return spans_;
  }

 private:
  const TraceContext ctx_;
  const std::chrono::steady_clock::time_point epoch_;
  /// Per-query (never shared across queries): shard fan-out records
  /// spans from pool and demux threads concurrently.
  mutable dbsa::Mutex mu_;
  std::vector<TraceSpan> spans_ DBSA_GUARDED_BY(mu_);
};

/// RAII span: times its scope and records on destruction. Null trace is
/// a no-op, so call sites don't branch.
class SpanTimer {
 public:
  SpanTimer(QueryTrace* trace, const char* stage, int shard = -1)
      : trace_(trace), stage_(stage), shard_(shard),
        start_ms_(trace ? trace->ElapsedMs() : 0.0) {}
  ~SpanTimer() {
    if (trace_ != nullptr) {
      trace_->Record(stage_, start_ms_, trace_->ElapsedMs() - start_ms_,
                     shard_);
    }
  }
  SpanTimer(const SpanTimer&) = delete;
  SpanTimer& operator=(const SpanTimer&) = delete;

 private:
  QueryTrace* trace_;
  const char* stage_;
  int shard_;
  double start_ms_;
};

/// Renders the one-line slow-query record: trace id, query kind, bound,
/// achieved epsilon, status, total latency, then a `stage=duration`
/// span table sorted by start time. All inputs are plain strings/numbers
/// so this layer stays independent of service types.
std::string FormatSlowQueryLine(const TraceContext& ctx,
                                const std::string& kind,
                                const std::string& bound,
                                double epsilon_achieved,
                                const std::string& status, double total_ms,
                                std::vector<TraceSpan> spans);

}  // namespace dbsa::telemetry

#endif  // DBSA_TELEMETRY_TRACE_H_
