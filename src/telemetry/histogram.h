// Fixed-boundary latency histogram VALUE type — the bucket math shared by
// the lock-free telemetry::Histogram metric (telemetry/metrics.h), the
// quantile view of util::RunningStats, and the bench latency summaries
// (bench/bench_util.h). Keeping one definition means the registry's wire
// exposition, the slow-query log and the bench reports all agree on what
// "p95" means.
//
// Boundaries are log2-spaced milliseconds: bucket i counts samples in
// (UpperBound(i-1), UpperBound(i)] with UpperBound(i) = 0.001 * 2^i, from
// 1 microsecond up to ~4295 seconds, plus one overflow bucket. Quantiles
// interpolate linearly inside a bucket, so the error of Quantile(p) is
// bounded by the bucket width (a factor of 2) — the right trade for
// latencies, where the DECADE matters and exact order statistics would
// need every sample retained.
//
// This header depends on nothing but the standard library: telemetry sits
// below util in the include graph (util/stats.h includes it).

#ifndef DBSA_TELEMETRY_HISTOGRAM_H_
#define DBSA_TELEMETRY_HISTOGRAM_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace dbsa::telemetry {

/// Plain (non-atomic, copyable) histogram of non-negative latency samples
/// in milliseconds. The concurrent metric (telemetry::Histogram) records
/// into sharded atomic cells and merges into one of these on read.
struct HistogramData {
  /// Finite upper boundaries; one extra overflow bucket follows.
  static constexpr size_t kNumBounds = 33;
  static constexpr size_t kNumBuckets = kNumBounds + 1;

  /// Inclusive upper bound of bucket i (milliseconds): 0.001 * 2^i.
  static double UpperBound(size_t i) {
    double ub = 0.001;
    for (size_t k = 0; k < i; ++k) ub *= 2.0;
    return ub;
  }

  /// Index of the bucket that counts `ms` (the last bucket catches
  /// overflow, negatives and NaN clamp to bucket 0).
  static size_t BucketIndex(double ms) {
    if (!(ms > 0.001)) return 0;
    double ub = 0.001;
    for (size_t i = 0; i < kNumBounds; ++i) {
      if (ms <= ub) return i;
      ub *= 2.0;
    }
    return kNumBounds;  // Overflow.
  }

  std::array<uint64_t, kNumBuckets> buckets{};
  uint64_t count = 0;
  double sum_ms = 0.0;

  void Record(double ms) {
    ++buckets[BucketIndex(ms)];
    ++count;
    sum_ms += ms > 0.0 ? ms : 0.0;
  }

  void Merge(const HistogramData& o) {
    for (size_t i = 0; i < kNumBuckets; ++i) buckets[i] += o.buckets[i];
    count += o.count;
    sum_ms += o.sum_ms;
  }

  double MeanMs() const {
    return count != 0 ? sum_ms / static_cast<double>(count) : 0.0;
  }

  /// p in [0, 100]. Linear interpolation inside the bucket that holds the
  /// p-th sample; lower edge of bucket 0 is 0, the overflow bucket
  /// reports its lower edge (the largest finite boundary). 0 when empty.
  double Quantile(double p) const {
    if (count == 0) return 0.0;
    if (p < 0.0) p = 0.0;
    if (p > 100.0) p = 100.0;
    // Rank of the target sample, 1-based: quantile q covers the first
    // ceil(q * count) samples.
    const double target = p / 100.0 * static_cast<double>(count);
    uint64_t cumulative = 0;
    for (size_t i = 0; i < kNumBuckets; ++i) {
      if (buckets[i] == 0) continue;
      const uint64_t next = cumulative + buckets[i];
      if (static_cast<double>(next) >= target) {
        const double lo = i == 0 ? 0.0 : UpperBound(i - 1);
        if (i == kNumBounds) return UpperBound(kNumBounds - 1);  // Overflow.
        const double hi = UpperBound(i);
        const double into =
            (target - static_cast<double>(cumulative)) /
            static_cast<double>(buckets[i]);
        return lo + (hi - lo) * (into < 0.0 ? 0.0 : into > 1.0 ? 1.0 : into);
      }
      cumulative = next;
    }
    return UpperBound(kNumBounds - 1);
  }
};

}  // namespace dbsa::telemetry

#endif  // DBSA_TELEMETRY_HISTOGRAM_H_
