#include "telemetry/trace.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <thread>

namespace dbsa::telemetry {
namespace {

/// splitmix64 — the id mixer. Self-contained so telemetry does not pull
/// in util/random.h (which sits above it in the include graph).
uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t NextId() {
  // Per-thread generator seeded from the clock, the thread id, and a
  // process-wide counter: unique within a process, distinct across
  // processes sharing a trace (shard servers mint only span-local ids).
  static std::atomic<uint64_t> salt{0};
  thread_local uint64_t state = [] {
    uint64_t s = static_cast<uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
    s ^= std::hash<std::thread::id>{}(std::this_thread::get_id()) *
         0x9e3779b97f4a7c15ULL;
    s ^= salt.fetch_add(0x9e3779b97f4a7c15ULL, std::memory_order_relaxed);
    return s;
  }();
  return SplitMix64(state);
}

}  // namespace

TraceContext NewTraceContext() {
  TraceContext ctx;
  do {
    ctx.trace_hi = NextId();
    ctx.trace_lo = NextId();
  } while (!ctx.valid());  // The all-zero id means "untraced" on the wire.
  ctx.span_id = NextId();
  return ctx;
}

std::string TraceIdHex(uint64_t hi, uint64_t lo) {
  if ((hi | lo) == 0) return "untraced";
  char buf[33];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return buf;
}

std::string FormatSlowQueryLine(const TraceContext& ctx,
                                const std::string& kind,
                                const std::string& bound,
                                double epsilon_achieved,
                                const std::string& status, double total_ms,
                                std::vector<TraceSpan> spans) {
  std::stable_sort(spans.begin(), spans.end(),
                   [](const TraceSpan& a, const TraceSpan& b) {
                     return a.start_ms < b.start_ms;
                   });
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "SLOW_QUERY trace=%s kind=%s bound=%s eps_achieved=%.6g "
                "status=%s total_ms=%.3f spans=[",
                TraceIdHex(ctx.trace_hi, ctx.trace_lo).c_str(), kind.c_str(),
                bound.c_str(), epsilon_achieved, status.c_str(), total_ms);
  std::string out = buf;
  bool first = true;
  for (const TraceSpan& s : spans) {
    if (!first) out += " ";
    first = false;
    if (s.shard >= 0 && s.correlation != 0) {
      std::snprintf(buf, sizeof(buf), "%s{shard=%d,corr=%llu}@%.3f+%.3fms",
                    s.stage.c_str(), s.shard,
                    static_cast<unsigned long long>(s.correlation), s.start_ms,
                    s.duration_ms);
    } else if (s.shard >= 0) {
      std::snprintf(buf, sizeof(buf), "%s{shard=%d}@%.3f+%.3fms",
                    s.stage.c_str(), s.shard, s.start_ms, s.duration_ms);
    } else {
      std::snprintf(buf, sizeof(buf), "%s@%.3f+%.3fms", s.stage.c_str(),
                    s.start_ms, s.duration_ms);
    }
    out += buf;
  }
  out += "]";
  return out;
}

}  // namespace dbsa::telemetry
