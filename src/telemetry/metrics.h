// MetricRegistry — the process-local metrics surface of the serving
// stack: counters, gauges and fixed-boundary latency histograms with a
// Prometheus-style text exposition (RenderText), scrapeable over the
// shard wire via the kStatsRequest admin frame (service/transport.h) and
// scripts/scrape_cluster_stats.sh.
//
// Hot-path contract: recording is ONE relaxed atomic add into a
// per-thread-striped cell — no lock, no allocation, TSan-clean (all
// cross-thread traffic is atomics). Reads (Value(), RenderText) merge the
// stripes; they are monotone but not a snapshot — a render racing a
// recorder may see the newest increments of one stripe and not another,
// which is the standard and acceptable semantics for monitoring counters.
//
// Metric naming: the full name may carry a fixed Prometheus label set,
// e.g. `dbsa_queries_total{kind="count"}`. Metrics sharing the family
// (the part before '{') are grouped under one `# TYPE` line. Histograms
// expose the conventional `<family>_bucket{le="..."}`, `<family>_sum`,
// `<family>_count` series with the `le` label spliced into the metric's
// own labels.
//
// Lifetime: Counter/Gauge/Histogram pointers returned by the registry are
// stable for the registry's lifetime (deque storage, no erasure) — owners
// resolve them once at construction and record through raw pointers.

#ifndef DBSA_TELEMETRY_METRICS_H_
#define DBSA_TELEMETRY_METRICS_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>

#include "telemetry/histogram.h"
#include "util/determinism.h"
#include "util/thread_annotations.h"

namespace dbsa::telemetry {

/// Stripes per metric. Recording threads hash to a stripe; one cache line
/// each so concurrent recorders do not false-share.
inline constexpr size_t kMetricStripes = 8;

/// Stripe of the calling thread (stable per thread, assigned round-robin
/// on first use).
size_t ThreadStripe();

/// Monotone counter.
class Counter {
 public:
  void Add(uint64_t n = 1) {
    cells_[ThreadStripe()].v.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const {
    uint64_t total = 0;
    for (const Cell& c : cells_) total += c.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  struct alignas(64) Cell {
    std::atomic<uint64_t> v{0};
  };
  Cell cells_[kMetricStripes];
};

/// Last-write-wins gauge (a double). Set is a relaxed store of the bit
/// pattern; no striping — gauges are set under their owner's own
/// serialization (cache mutations, pool construction).
class Gauge {
 public:
  void Set(double v) {
    bits_.store(util::BitCast<uint64_t>(v), std::memory_order_relaxed);
  }
  double Value() const {
    return util::BitCast<double>(bits_.load(std::memory_order_relaxed));
  }

 private:
  std::atomic<uint64_t> bits_{0};
};

/// Concurrent fixed-boundary latency histogram (milliseconds). Recording
/// is three relaxed adds into the caller's stripe (bucket, count, sum in
/// integer microseconds — no atomic-double CAS loop on the hot path).
class Histogram {
 public:
  void Record(double ms) {
    Stripe& s = stripes_[ThreadStripe()];
    s.buckets[HistogramData::BucketIndex(ms)].fetch_add(
        1, std::memory_order_relaxed);
    s.count.fetch_add(1, std::memory_order_relaxed);
    const double us = ms * 1000.0;
    s.sum_us.fetch_add(us > 0.0 ? static_cast<uint64_t>(us + 0.5) : 0,
                       std::memory_order_relaxed);
  }

  /// Merged view of all stripes (monotone, not an atomic snapshot).
  HistogramData Snapshot() const;

 private:
  struct alignas(64) Stripe {
    std::atomic<uint64_t> buckets[HistogramData::kNumBuckets] = {};
    std::atomic<uint64_t> count{0};
    std::atomic<uint64_t> sum_us{0};
  };
  Stripe stripes_[kMetricStripes];
};

class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// Resolve-or-create by full name (labels included). Pointers are
  /// stable for the registry's lifetime; resolving an existing name
  /// returns the same metric (shared by design — e.g. two transports in
  /// one registry would merge, so owners label their names).
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Prometheus text exposition, sorted by name: `# TYPE` per family,
  /// counters/gauges as `name value`, histograms as the conventional
  /// _bucket/_sum/_count series.
  std::string RenderText() const;

 private:
  enum class MetricKind { kCounter, kGauge, kHistogram };
  /// Pinned at the RenderText dispatch (see util/status.h convention).
  static constexpr int kMetricKindCount = 3;
  struct Slot {
    MetricKind kind;
    Counter* counter = nullptr;
    Gauge* gauge = nullptr;
    Histogram* histogram = nullptr;
  };

  /// Resolution lock: guards the name directory and the metric storage
  /// deques. Recording does NOT take it (pointers are stable, cells are
  /// atomics); only GetCounter/GetGauge/GetHistogram and the directory
  /// copy at the top of RenderText do.
  mutable dbsa::Mutex mu_;
  std::deque<Counter> counters_ DBSA_GUARDED_BY(mu_);
  std::deque<Gauge> gauges_ DBSA_GUARDED_BY(mu_);
  std::deque<Histogram> histograms_ DBSA_GUARDED_BY(mu_);
  /// Ordered: render is sorted.
  std::map<std::string, Slot> by_name_ DBSA_GUARDED_BY(mu_);
};

}  // namespace dbsa::telemetry

#endif  // DBSA_TELEMETRY_METRICS_H_
