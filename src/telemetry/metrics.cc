#include "telemetry/metrics.h"

#include <algorithm>
#include <cstdio>
#include <vector>

namespace dbsa::telemetry {
namespace {

/// Formats a metric value the way Prometheus text exposition expects:
/// integers without a decimal point, everything else with enough digits
/// to round-trip.
std::string FormatValue(double v) {
  char buf[64];
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      v > -1e15 && v < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  return buf;
}

/// Bucket upper bounds are 0.001·2^i ms — 10 significant digits render
/// every bound exactly (the largest, 0.001·2^32 = 4294967.296, needs all
/// ten) without the float noise %.17g would print (le="1.024", not
/// le="1.0240000000000002").
std::string FormatBound(double bound) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", bound);
  return buf;
}

/// `name` may carry labels (`family{k="v"}`). Returns the family.
std::string FamilyOf(const std::string& name) {
  const size_t brace = name.find('{');
  return brace == std::string::npos ? name : name.substr(0, brace);
}

/// Splices an `le` label into a (possibly labeled) series name:
///   f            -> f_bucket{le="X"}
///   f{k="v"}     -> f_bucket{k="v",le="X"}
std::string BucketSeries(const std::string& name, const std::string& le) {
  const size_t brace = name.find('{');
  if (brace == std::string::npos) return name + "_bucket{le=\"" + le + "\"}";
  std::string out = name.substr(0, brace) + "_bucket";
  out += name.substr(brace, name.size() - brace - 1);  // Drop trailing '}'.
  out += ",le=\"" + le + "\"}";
  return out;
}

/// Appends a suffix to the family while preserving labels:
///   f{k="v"} + _sum -> f_sum{k="v"}
std::string SuffixSeries(const std::string& name, const char* suffix) {
  const size_t brace = name.find('{');
  if (brace == std::string::npos) return name + suffix;
  return name.substr(0, brace) + suffix + name.substr(brace);
}

}  // namespace

size_t ThreadStripe() {
  static std::atomic<size_t> next{0};
  thread_local const size_t stripe =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricStripes;
  return stripe;
}

HistogramData Histogram::Snapshot() const {
  HistogramData out;
  uint64_t sum_us = 0;
  for (const Stripe& s : stripes_) {
    for (size_t i = 0; i < HistogramData::kNumBuckets; ++i) {
      out.buckets[i] += s.buckets[i].load(std::memory_order_relaxed);
    }
    out.count += s.count.load(std::memory_order_relaxed);
    sum_us += s.sum_us.load(std::memory_order_relaxed);
  }
  out.sum_ms = static_cast<double>(sum_us) / 1000.0;
  return out;
}

Counter* MetricRegistry::GetCounter(const std::string& name) {
  dbsa::MutexLock lock(mu_);
  auto it = by_name_.find(name);
  if (it != by_name_.end()) return it->second.counter;
  counters_.emplace_back();
  Slot slot;
  slot.kind = MetricKind::kCounter;
  slot.counter = &counters_.back();
  by_name_.emplace(name, slot);
  return slot.counter;
}

Gauge* MetricRegistry::GetGauge(const std::string& name) {
  dbsa::MutexLock lock(mu_);
  auto it = by_name_.find(name);
  if (it != by_name_.end()) return it->second.gauge;
  gauges_.emplace_back();
  Slot slot;
  slot.kind = MetricKind::kGauge;
  slot.gauge = &gauges_.back();
  by_name_.emplace(name, slot);
  return slot.gauge;
}

Histogram* MetricRegistry::GetHistogram(const std::string& name) {
  dbsa::MutexLock lock(mu_);
  auto it = by_name_.find(name);
  if (it != by_name_.end()) return it->second.histogram;
  histograms_.emplace_back();
  Slot slot;
  slot.kind = MetricKind::kHistogram;
  slot.histogram = &histograms_.back();
  by_name_.emplace(name, slot);
  return slot.histogram;
}

std::string MetricRegistry::RenderText() const {
  // Copy the directory under the lock, then read metric values lock-free
  // (metric cells are atomics; pointers are stable).
  std::vector<std::pair<std::string, Slot>> slots;
  {
    dbsa::MutexLock lock(mu_);
    slots.assign(by_name_.begin(), by_name_.end());
  }

  std::string out;
  out.reserve(slots.size() * 64);
  std::string last_family;
  for (const auto& [name, slot] : slots) {
    const std::string family = FamilyOf(name);
    if (family != last_family) {
      out += "# TYPE " + family + " ";
      static_assert(kMetricKindCount == 3,
                    "new MetricKind: extend both RenderText switches below");
      switch (slot.kind) {
        case MetricKind::kCounter: out += "counter"; break;
        case MetricKind::kGauge: out += "gauge"; break;
        case MetricKind::kHistogram: out += "histogram"; break;
      }
      out += "\n";
      last_family = family;
    }
    switch (slot.kind) {
      case MetricKind::kCounter:
        out += name + " " +
               FormatValue(static_cast<double>(slot.counter->Value())) + "\n";
        break;
      case MetricKind::kGauge:
        out += name + " " + FormatValue(slot.gauge->Value()) + "\n";
        break;
      case MetricKind::kHistogram: {
        const HistogramData data = slot.histogram->Snapshot();
        uint64_t cumulative = 0;
        for (size_t i = 0; i < HistogramData::kNumBounds; ++i) {
          cumulative += data.buckets[i];
          out += BucketSeries(name, FormatBound(HistogramData::UpperBound(i))) +
                 " " + FormatValue(static_cast<double>(cumulative)) + "\n";
        }
        out += BucketSeries(name, "+Inf") + " " +
               FormatValue(static_cast<double>(data.count)) + "\n";
        out += SuffixSeries(name, "_sum") + " " + FormatValue(data.sum_ms) +
               "\n";
        out += SuffixSeries(name, "_count") + " " +
               FormatValue(static_cast<double>(data.count)) + "\n";
        break;
      }
    }
  }
  return out;
}

}  // namespace dbsa::telemetry
