// Service demo: the concurrent serving layer in ~60 seconds.
//
//   1. Generate a synthetic city and freeze it into an immutable snapshot.
//   2. Stand up a QueryService: a thread pool plus a memory-budgeted LRU
//      cache of HR approximations shared across queries and threads.
//   3. Warm the cache, then fire a batch of mixed queries and drain it.
//   4. Inspect the cache statistics — the "build approximations once,
//      serve them forever" economics of the paper's vision.
//
// Build & run:  ./build/example_service_demo

#include <cstdio>

#include "core/dbsa.h"

int main() {
  using namespace dbsa;

  // 1. The city: 200K taxi pickups, 64 districts.
  data::TaxiConfig city;
  city.universe = geom::Box(0, 0, 16384, 16384);
  data::PointSet pickups = data::GenerateTaxiPoints(200000, city);

  data::RegionConfig district_config;
  district_config.universe = city.universe;
  district_config.num_polygons = 64;
  district_config.target_avg_vertices = 40;
  data::RegionSet districts = data::GenerateRegions(district_config);

  // Freeze the tables + grid + point index into one shared snapshot.
  const auto snapshot =
      core::BuildEngineState(std::move(pickups), std::move(districts));

  // 2. The service: 8 worker threads, 64 MB approximation budget.
  service::ServiceOptions options;
  options.num_threads = 8;
  options.cache_budget_bytes = size_t{64} << 20;
  service::QueryService service(snapshot, options);
  std::printf("service up: %zu threads, %.0f MB cache budget\n",
              service.num_threads(),
              static_cast<double>(options.cache_budget_bytes) / (1 << 20));

  // 3. Warm the 10 m approximations, then run a batch.
  service.WarmCache(/*epsilon=*/10.0);

  // A repeated-epsilon burst on the cache-backed point-index plan.
  for (int burst = 0; burst < 3; ++burst) {
    service.Submit(service::Request::MakeAggregate(
        join::AggKind::kCount, core::Attr::kNone, 10.0, core::Mode::kPointIndex));
    service.Submit(service::Request::MakeAggregate(
        join::AggKind::kSum, core::Attr::kFare, 10.0, core::Mode::kPointIndex));
  }
  geom::Polygon viewport = geom::ParseWktPolygon(
                               "POLYGON ((4000 4000, 12000 5000, 12000 12000, "
                               "8000 10000, 4000 12000, 4000 4000))")
                               .value();
  service.Submit(service::Request::MakeCount(viewport, /*epsilon=*/25.0));

  const std::vector<service::Response> responses = service.Drain();
  for (const service::Response& r : responses) {
    switch (r.kind) {
      case service::Request::Kind::kAggregate:
        std::printf("#%llu %-16s rows=%zu  %.2f ms  (cache: %zu hits, %zu misses)\n",
                    static_cast<unsigned long long>(r.ticket),
                    query::PlanKindName(r.aggregate.stats.plan),
                    r.aggregate.rows.size(), r.aggregate.stats.elapsed_ms,
                    r.aggregate.stats.hr_cache_hits, r.aggregate.stats.hr_cache_misses);
        break;
      case service::Request::Kind::kCountInPolygon:
        std::printf("#%llu viewport count  %.0f in [%.0f, %.0f]\n",
                    static_cast<unsigned long long>(r.ticket), r.range.estimate,
                    r.range.lo, r.range.hi);
        break;
      case service::Request::Kind::kSelectInPolygon:
        std::printf("#%llu select          %zu ids\n",
                    static_cast<unsigned long long>(r.ticket), r.ids.size());
        break;
    }
  }

  // 4. The amortization story.
  const service::ApproxCache::Stats stats = service.cache_stats();
  std::printf(
      "\ncache: %zu entries, %.1f MB used, %zu hits / %zu misses "
      "(%.0f%% hit ratio)\n",
      stats.entries, static_cast<double>(stats.bytes_used) / (1 << 20), stats.hits,
      stats.misses, 100.0 * stats.HitRatio());
  return 0;
}
