// Service demo: the v2 query envelope in ~60 seconds.
//
//   1. Generate a synthetic city and freeze it into an immutable snapshot.
//   2. Stand up a QueryService: a thread pool plus a memory-budgeted LRU
//      cache of HR approximations shared across queries and threads.
//   3. Build Query descriptors with typed distance bounds (ErrorBound):
//      an absolute Hausdorff bound, a pinned grid level, and exact.
//   4. Read the ACHIEVED side of the contract off each Result — epsilon
//      actually guaranteed, HR level served, cells touched, cache hits —
//      the paper's bound as an observable, not a float argument.
//
// Build & run:  ./build/example_service_demo

#include <cstdio>

#include "core/dbsa.h"

int main() {
  using namespace dbsa;

  // 1. The city: 200K taxi pickups, 64 districts.
  data::TaxiConfig city;
  city.universe = geom::Box(0, 0, 16384, 16384);
  data::PointSet pickups = data::GenerateTaxiPoints(200000, city);

  data::RegionConfig district_config;
  district_config.universe = city.universe;
  district_config.num_polygons = 64;
  district_config.target_avg_vertices = 40;
  data::RegionSet districts = data::GenerateRegions(district_config);

  const auto snapshot =
      core::BuildEngineState(std::move(pickups), std::move(districts));

  // 2. The service: 8 worker threads, 64 MB approximation budget.
  service::ServiceOptions options;
  options.num_threads = 8;
  options.cache_budget_bytes = size_t{64} << 20;
  service::QueryService service(snapshot, options);
  std::printf("service up: %zu threads, %.0f MB cache budget\n",
              service.num_threads(),
              static_cast<double>(options.cache_budget_bytes) / (1 << 20));

  service.WarmCache(/*epsilon=*/10.0);

  // 3. One envelope, three bound regimes.
  service::ExecOptions within_10m;  // "anything within 10 map units".
  within_10m.bound = query::ErrorBound::Absolute(10.0);
  within_10m.mode = core::Mode::kPointIndex;

  service::ExecOptions at_level;  // "serve raster level 9, exactly".
  at_level.bound = query::ErrorBound::AtLevel(9);

  service::ExecOptions exact;  // "no approximation at all".
  exact.bound = query::ErrorBound::Exact();

  for (int burst = 0; burst < 3; ++burst) {
    service.Submit(service::Query::Aggregate(join::AggKind::kCount), within_10m);
    service.Submit(
        service::Query::Aggregate(join::AggKind::kSum, core::Attr::kFare),
        within_10m);
  }
  geom::Polygon viewport = geom::ParseWktPolygon(
                               "POLYGON ((4000 4000, 12000 5000, 12000 12000, "
                               "8000 10000, 4000 12000, 4000 4000))")
                               .value();
  service.Submit(service::Query::Count(viewport), at_level);
  service.Submit(service::Query::Count(viewport), exact);
  service.Submit(service::Query::Select(viewport), at_level);

  // 4. Drain and read the achieved bound off every Result.
  for (const service::Result& r : service.Drain()) {
    if (!r.ok()) {
      std::printf("#%llu FAILED: %s\n", static_cast<unsigned long long>(r.ticket),
                  r.status.ToString().c_str());
      continue;
    }
    const service::BoundReport& b = r.bound;
    switch (r.kind) {
      case service::QueryKind::kAggregate:
        std::printf(
            "#%llu %-14s rows=%zu  asked %s, served eps<=%.3f (level %d), "
            "%zu cells, cache %zu/%zu hit/miss\n",
            static_cast<unsigned long long>(r.ticket),
            query::PlanKindName(r.aggregate.stats.plan), r.aggregate.rows.size(),
            b.requested.ToString().c_str(), b.epsilon_achieved, b.hr_level,
            b.cells_touched, b.hr_cache_hits, b.hr_cache_misses);
        break;
      case service::QueryKind::kCount:
        std::printf(
            "#%llu viewport count  %.0f in [%.0f, %.0f]  asked %s, served "
            "eps<=%.3f (level %d)\n",
            static_cast<unsigned long long>(r.ticket), r.range.estimate,
            r.range.lo, r.range.hi, b.requested.ToString().c_str(),
            b.epsilon_achieved, b.hr_level);
        break;
      case service::QueryKind::kSelect:
        std::printf("#%llu select          %zu ids  (%s via %s path)\n",
                    static_cast<unsigned long long>(r.ticket), r.ids.size(),
                    b.requested.ToString().c_str(), ExecPathName(b.path));
        break;
    }
  }

  // The amortization story.
  const service::ApproxCache::Stats stats = service.cache_stats();
  std::printf(
      "\ncache: %zu entries, %.1f MB used, %zu hits / %zu misses "
      "(%.0f%% hit ratio)\n",
      stats.entries, static_cast<double>(stats.bytes_used) / (1 << 20), stats.hits,
      stats.misses, 100.0 * stats.HitRatio());
  return 0;
}
