// cluster_stats — wire-level metrics scrape client for a socket cluster.
//
// Dials each shard endpoint named by a placement file, sends one
// kStatsRequest frame, and prints the Prometheus-text reply to stdout
// (prefixed with a `# shard N <endpoint>` banner per shard). This is the
// scrape half of the telemetry story: shard_server_main processes answer
// kStatsRequest from their own MetricRegistry, so this client needs no
// dataset flags at all — it never routes a query.
//
//   ./build/example_cluster_stats --placement=cluster.placement
//   ./build/example_cluster_stats --placement=cluster.placement --shard=2
//   ./build/example_cluster_stats --placement=cluster.placement
//       --endpoint=replica          (scrape the failover listeners)
//
// Exit code 0 iff every requested shard answered. See
// scripts/scrape_cluster_stats.sh for the scripted wrapper and
// docs/operations.md § Monitoring for the metric catalogue.

#include <unistd.h>

#include <cstdio>
#include <string>

#include "service/placement.h"
#include "service/socket_transport.h"
#include "service/transport.h"
#include "util/flags.h"

namespace {

using dbsa::util::FlagValue;

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --placement=FILE [--shard=N]\n"
               "          [--endpoint=primary|replica] [--timeout_ms=5000]\n"
               "\n"
               "Scrapes each shard server's metrics over the wire\n"
               "(kStatsRequest) and prints the Prometheus text replies.\n",
               argv0);
  return 2;
}

/// One scrape: dial, send the 8-byte stats frame, read one reply frame.
dbsa::Status ScrapeShard(const dbsa::service::Endpoint& endpoint, int timeout_ms,
                         std::string* text) {
  using namespace dbsa;
  const service::Deadline deadline = service::Deadline::After(timeout_ms);
  StatusOr<int> fd = service::DialTcp(endpoint, deadline);
  if (!fd.ok()) return fd.status();
  const std::string request = service::StatsRequest().Encode();
  Status status = service::SendAll(*fd, request.data(), request.size(), deadline);
  if (status.ok()) {
    // Metrics text grows with the label space but stays far below frame
    // limits; 64 MiB matches the transport's default cap.
    StatusOr<std::string> frame = service::ReadFrame(*fd, 64u << 20, deadline);
    if (frame.ok()) {
      service::StatsReply reply;
      status = service::StatsReply::Decode(*frame, &reply);
      if (status.ok()) *text = std::move(reply.text);
    } else {
      status = frame.status();
    }
  }
  ::close(*fd);
  return status;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dbsa;

  if (!util::KnownFlagsOnly(argc, argv,
                            {"placement", "shard", "endpoint", "timeout_ms"})) {
    return Usage(argv[0]);
  }
  std::string placement_path;
  if (!FlagValue(argc, argv, "placement", &placement_path)) return Usage(argv[0]);
  std::string endpoint_role = "primary";
  FlagValue(argc, argv, "endpoint", &endpoint_role);
  if (endpoint_role != "primary" && endpoint_role != "replica") {
    return Usage(argv[0]);
  }
  const int timeout_ms =
      static_cast<int>(util::UintFlag(argc, argv, "timeout_ms", 5000));

  StatusOr<service::ShardPlacement> placement =
      service::ShardPlacement::Load(placement_path);
  if (!placement.ok()) {
    std::fprintf(stderr, "error: %s\n", placement.status().ToString().c_str());
    return 1;
  }

  size_t first = 0;
  size_t last = placement->num_shards();
  std::string shard_str;
  if (FlagValue(argc, argv, "shard", &shard_str)) {
    const size_t shard =
        static_cast<size_t>(util::UintFlag(argc, argv, "shard", 0));
    if (shard >= placement->num_shards()) {
      std::fprintf(stderr, "error: shard %zu out of range (placement has %zu)\n",
                   shard, placement->num_shards());
      return 1;
    }
    first = shard;
    last = shard + 1;
  }

  bool ok = true;
  for (size_t s = first; s < last; ++s) {
    const service::ShardPlacement::Entry& entry = placement->shards[s];
    if (endpoint_role == "replica" && !entry.has_replica) {
      std::fprintf(stderr, "error: shard %zu has no replica endpoint\n", s);
      ok = false;
      continue;
    }
    const service::Endpoint endpoint =
        endpoint_role == "replica" ? entry.replica : entry.primary;
    std::string text;
    const Status status = ScrapeShard(endpoint, timeout_ms, &text);
    if (!status.ok()) {
      std::fprintf(stderr, "error: shard %zu (%s): %s\n", s,
                   endpoint.ToString().c_str(), status.ToString().c_str());
      ok = false;
      continue;
    }
    std::printf("# shard %zu %s\n%s", s, endpoint.ToString().c_str(),
                text.c_str());
  }
  return ok ? 0 : 1;
}
