// Socket cluster demo: the shard seam over REAL TCP connections.
//
// Two modes, one client:
//
//   self-contained (default)    spawns a 4-shard cluster inside this
//       process — each shard's ShardServer behind a ShardListener on an
//       ephemeral localhost port, plus a replica listener per shard —
//       then queries it through a QueryService in socket mode and
//       proves the results byte-identical to the loopback seam. Finally
//       it KILLS one shard's primary listener and repeats the queries:
//       the transport fails over to the replica, results unchanged.
//
//   --placement=FILE            connects to an EXTERNAL cluster (one
//       shard_server_main process per line of the placement file; see
//       docs/operations.md). Dataset flags must match the servers'.
//       This is the client half of scripts/run_socket_cluster_smoke.sh.
//
// Exit code 0 iff every query succeeded AND every socket-mode payload
// was byte-identical to the loopback reference — so CI can run this as
// the end-to-end socket smoke.
//
// Build & run:  ./build/example_socket_cluster_demo

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/dbsa.h"
#include "data/cluster_demo.h"
#include "service/query_service.h"
#include "service/socket_cluster.h"
#include "service/socket_transport.h"
#include "telemetry/trace.h"
#include "util/flags.h"

namespace {

using dbsa::util::FlagValue;

/// The demo workload: every query kind under every bound regime.
std::vector<uint64_t> SubmitWorkload(dbsa::service::QueryService& service,
                                     const dbsa::geom::Polygon& viewport) {
  using namespace dbsa;
  std::vector<uint64_t> tickets;
  service::ExecOptions within_8;
  within_8.bound = query::ErrorBound::Absolute(8.0);
  within_8.mode = core::Mode::kPointIndex;  // Pin the plan: the socket and
  // loopback transports charge different per-message costs, and under
  // kAuto the optimizer may legitimately pick different plans — pinning
  // isolates the byte-identity comparison (see docs/architecture.md).
  service::ExecOptions at_level = within_8;
  at_level.bound = query::ErrorBound::AtLevel(6);
  service::ExecOptions exact;
  exact.bound = query::ErrorBound::Exact();

  for (const service::ExecOptions& options : {within_8, at_level, exact}) {
    tickets.push_back(service.Submit(
        service::Query::Aggregate(join::AggKind::kCount), options));
    tickets.push_back(service.Submit(
        service::Query::Aggregate(join::AggKind::kSum, core::Attr::kFare),
        options));
    tickets.push_back(service.Submit(service::Query::Count(viewport), options));
    tickets.push_back(service.Submit(service::Query::Select(viewport), options));
  }
  return tickets;
}

/// Byte-level equality of two Result payloads (aggregate rows, count
/// ranges, selection ids — exactly the contract the seam guarantees).
bool SameResult(const dbsa::service::Result& got, const dbsa::service::Result& want,
                std::string* why) {
  using namespace dbsa;
  if (!got.ok() || !want.ok()) {
    *why = "status " + got.status.ToString() + " vs " + want.status.ToString();
    return got.ok() == want.ok() && got.status.code() == want.status.code();
  }
  if (got.kind != want.kind) {
    *why = "kind mismatch";
    return false;
  }
  switch (got.kind) {
    case service::QueryKind::kAggregate: {
      const auto& g = got.aggregate.rows;
      const auto& w = want.aggregate.rows;
      if (g.size() != w.size()) {
        *why = "row count";
        return false;
      }
      for (size_t r = 0; r < w.size(); ++r) {
        if (g[r].region != w[r].region || g[r].value != w[r].value ||
            g[r].lo != w[r].lo || g[r].hi != w[r].hi) {
          *why = "row " + std::to_string(r);
          return false;
        }
      }
      return true;
    }
    case service::QueryKind::kCount:
      if (got.range.estimate != want.range.estimate ||
          got.range.lo != want.range.lo || got.range.hi != want.range.hi) {
        *why = "count range";
        return false;
      }
      return true;
    case service::QueryKind::kSelect:
      if (got.ids != want.ids) {
        *why = "selection ids";
        return false;
      }
      return true;
  }
  *why = "unknown kind";
  return false;
}

/// Runs the workload on both services and compares ticket by ticket.
bool RunAndCompare(dbsa::service::QueryService& socket_service,
                   dbsa::service::QueryService& loopback_service,
                   const dbsa::geom::Polygon& viewport, const char* label) {
  SubmitWorkload(socket_service, viewport);
  SubmitWorkload(loopback_service, viewport);
  const auto got = socket_service.Drain();
  const auto want = loopback_service.Drain();
  if (got.size() != want.size()) {
    std::printf("[%s] DRAIN SIZE MISMATCH %zu vs %zu\n", label, got.size(),
                want.size());
    return false;
  }
  size_t identical = 0;
  for (size_t i = 0; i < want.size(); ++i) {
    std::string why;
    if (!got[i].ok()) {
      std::printf("[%s] query %zu failed: %s\n", label, i,
                  got[i].status.ToString().c_str());
      return false;
    }
    if (!SameResult(got[i], want[i], &why)) {
      std::printf("[%s] query %zu DIVERGED (%s)\n", label, i, why.c_str());
      return false;
    }
    ++identical;
  }
  std::printf("[%s] %zu/%zu results byte-identical to the loopback seam\n",
              label, identical, want.size());
  if (!got.empty()) {
    // Every query minted a trace id (identity travels to every shard in
    // the v3 frames); print one so an operator can grep it out of a
    // SLOW_QUERY / SLOW_SHARD line on the servers.
    std::printf("[%s] sample trace id: %s\n", label,
                dbsa::telemetry::TraceIdHex(got.front().bound.trace_hi,
                                            got.front().bound.trace_lo)
                    .c_str());
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dbsa;

  if (!util::KnownFlagsOnly(argc, argv,
                            {"placement", "shards", "points", "regions",
                             "universe", "seed", "hilbert_level", "epoch"})) {
    std::fprintf(stderr,
                 "usage: %s [--placement=FILE] [--shards=4] [--points=20000]\n"
                 "          [--regions=24] [--universe=4096] [--seed=20210111]\n"
                 "          [--hilbert_level=16] [--epoch=0]\n"
                 "--epoch=E pins every socket query to serving epoch E\n"
                 "(snapshot-loaded clusters; 0 = wildcard, accept any).\n",
                 argv[0]);
    return 2;
  }

  const data::ClusterDemoConfig dataset =
      data::ClusterDemoConfigFromFlags(argc, argv);
  const size_t num_shards =
      static_cast<size_t>(util::UintFlag(argc, argv, "shards", 4));

  std::printf("building the demo city (%zu points, %zu regions)...\n",
              dataset.num_points, dataset.num_regions);
  const auto base = core::BuildEngineState(data::ClusterDemoPoints(dataset),
                                           data::ClusterDemoRegions(dataset));

  const geom::Polygon viewport =
      geom::ParseWktPolygon(
          "POLYGON ((600 600, 3000 900, 3400 3000, 1800 2600, 600 3200, 600 600))")
          .value();

  // The reference: the same snapshot behind the loopback seam (same
  // shard count, same wire format, in-process handlers).
  service::ServiceOptions loopback_options;
  loopback_options.num_threads = 4;
  loopback_options.num_shards = num_shards;
  loopback_options.shard_hilbert_level = dataset.hilbert_level;
  loopback_options.use_transport = true;
  service::QueryService loopback_service(base, loopback_options);

  // The cluster: external (--placement) or spawned in-process.
  service::ShardPlacement placement;
  std::vector<std::unique_ptr<service::ShardServer>> servers;
  std::vector<std::unique_ptr<service::ShardListener>> primaries;
  std::vector<std::unique_ptr<service::ShardListener>> replicas;
  std::string placement_path;
  const bool external = FlagValue(argc, argv, "placement", &placement_path);
  if (external) {
    StatusOr<service::ShardPlacement> loaded =
        service::ShardPlacement::Load(placement_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "error: %s\n", loaded.status().ToString().c_str());
      return 1;
    }
    placement = std::move(loaded.value());
    if (dataset.num_points < placement.num_shards()) {
      // ShardedState::Build clamps the shard count to the point count;
      // a routing build at the clamped K could never match the cluster.
      std::fprintf(stderr,
                   "error: --points=%zu is fewer than the placement's %zu shards\n",
                   dataset.num_points, placement.num_shards());
      return 1;
    }
    std::printf("connecting to an external %zu-shard cluster (%s)\n",
                placement.num_shards(), placement_path.c_str());
  } else {
    // Spawn the cluster in-process: a primary AND a replica listener per
    // shard, each serving the shard's slice over real localhost TCP.
    service::InProcessShardClusterOptions cluster_options;
    cluster_options.with_replicas = true;
    cluster_options.hilbert_level = dataset.hilbert_level;
    service::InProcessShardCluster cluster =
        service::MakeInProcessShardCluster(base, num_shards, cluster_options);
    servers = std::move(cluster.servers);
    primaries = std::move(cluster.primaries);
    replicas = std::move(cluster.replicas);
    placement = std::move(cluster.placement);
    for (size_t s = 0; s < servers.size(); ++s) {
      std::printf("shard %zu: primary %s, replica %s (%zu points)\n", s,
                  primaries[s]->endpoint().ToString().c_str(),
                  replicas[s]->endpoint().ToString().c_str(),
                  servers[s]->num_points());
    }
  }

  service::ServiceOptions socket_options = loopback_options;
  socket_options.transport_kind = service::TransportKind::kSocket;
  socket_options.placement = placement;
  if (external) {
    // The placement file is the deployment truth for the shard count; the
    // --shards flag only sizes the in-process reference cluster. Results
    // stay byte-identical to the loopback reference at any K.
    socket_options.num_shards = 0;
  }
  socket_options.socket_options.roundtrip_timeout_ms = 30000;
  // Pin queries to a snapshot generation (read-your-epoch). The loopback
  // reference serves at the wildcard epoch, so pinning only the socket
  // side keeps the byte-identity comparison intact.
  socket_options.serving_epoch = util::UintFlag(argc, argv, "epoch", 0);
  service::QueryService socket_service(base, socket_options);

  bool ok = RunAndCompare(socket_service, loopback_service, viewport, "tcp");

  if (!external && ok && !primaries.empty()) {
    // Failover: kill shard 1's primary (its port stops answering and its
    // live connections die); the next queries must be served by the
    // replica, byte-identical, with a clean Status — no hang, no error.
    const size_t victim = primaries.size() > 1 ? 1 : 0;
    std::printf("killing shard %zu's primary listener...\n", victim);
    primaries[victim]->Stop();
    ok = RunAndCompare(socket_service, loopback_service, viewport, "failover") && ok;
  }

  const service::SocketTransport* transport = socket_service.socket_transport();
  const service::SocketTransport::Stats stats = transport->stats();
  std::printf(
      "socket transport: %llu messages (%llu req bytes, %llu resp bytes), "
      "%llu dials, %llu reconnects, %llu failovers, %llu timeouts\n",
      static_cast<unsigned long long>(stats.messages),
      static_cast<unsigned long long>(stats.request_bytes),
      static_cast<unsigned long long>(stats.response_bytes),
      static_cast<unsigned long long>(stats.dials),
      static_cast<unsigned long long>(stats.reconnects),
      static_cast<unsigned long long>(stats.failovers),
      static_cast<unsigned long long>(stats.timeouts));

  std::printf(ok ? "OK: socket execution is byte-identical to the loopback seam\n"
                 : "FAILED\n");
  return ok ? 0 : 1;
}
