// region_stats: operational-planning analytics over regions (the taxi
// provider scenario of Section 2.2) — AVG fare and trip counts per
// region, computed approximately with result ranges, and the trade-off
// between the distance bound and accuracy, measured against exact.
//
// Build & run:  ./build/examples/region_stats

#include <cstdio>

#include "core/dbsa.h"
#include "util/stats.h"

int main() {
  using namespace dbsa;

  const geom::Box universe(0, 0, 16384, 16384);
  data::TaxiConfig city;
  city.universe = universe;
  const data::PointSet trips = data::GenerateTaxiPoints(400000, city);

  data::RegionConfig region_config = data::NeighborhoodsConfig(universe);
  region_config.num_polygons = 48;  // A workable report size.
  region_config.multi_fraction = 0.0;
  const data::RegionSet regions = data::GenerateRegions(region_config);

  core::SpatialEngine engine;
  engine.SetPoints(trips);
  engine.SetRegions(regions);

  // Exact reference once.
  const core::AggregateAnswer exact_count =
      engine.Aggregate(join::AggKind::kCount, core::Attr::kNone, 0.0);
  const core::AggregateAnswer exact_avg =
      engine.Aggregate(join::AggKind::kAvg, core::Attr::kFare, 0.0);

  std::printf("accuracy vs distance bound (ACT plan, no exact tests)\n");
  std::printf("eps (m) | elapsed (ms) | mean |count err| %% | mean |avg-fare err| %%\n");
  std::printf("--------+--------------+-------------------+---------------------\n");
  for (const double eps : {64.0, 16.0, 4.0, 1.0}) {
    const core::AggregateAnswer count =
        engine.Aggregate(join::AggKind::kCount, core::Attr::kNone, eps,
                         core::Mode::kAct);
    const core::AggregateAnswer avg = engine.Aggregate(
        join::AggKind::kAvg, core::Attr::kFare, eps, core::Mode::kAct);
    RunningStats count_err, avg_err;
    for (size_t r = 0; r < regions.num_regions; ++r) {
      if (exact_count.rows[r].value > 0) {
        count_err.Add(100.0 *
                      std::fabs(count.rows[r].value - exact_count.rows[r].value) /
                      exact_count.rows[r].value);
      }
      if (exact_avg.rows[r].value > 0) {
        avg_err.Add(100.0 * std::fabs(avg.rows[r].value - exact_avg.rows[r].value) /
                    exact_avg.rows[r].value);
      }
    }
    std::printf("%7.1f | %12.2f | %17.4f | %19.5f\n", eps,
                count.stats.elapsed_ms + avg.stats.elapsed_ms, count_err.mean(),
                avg_err.mean());
  }

  // The report itself, at a 4 m bound with guaranteed count ranges.
  std::printf("\nregional report (eps=4m, point-index plan with ranges)\n");
  const core::AggregateAnswer report = engine.Aggregate(
      join::AggKind::kCount, core::Attr::kNone, 4.0, core::Mode::kPointIndex);
  const core::AggregateAnswer fares = engine.Aggregate(
      join::AggKind::kAvg, core::Attr::kFare, 4.0, core::Mode::kAct);
  std::printf("region | trips (range)            | avg fare\n");
  std::printf("-------+--------------------------+---------\n");
  for (size_t r = 0; r < 10 && r < regions.num_regions; ++r) {
    std::printf("%6zu | %8.0f [%8.0f,%8.0f] | $%.2f\n", r, report.rows[r].value,
                report.rows[r].lo, report.rows[r].hi, fares.rows[r].value);
  }
  std::printf("... (%zu regions total)\n", regions.num_regions);
  return 0;
}
