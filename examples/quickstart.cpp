// Quickstart: the 60-second tour of dbsa.
//
//   1. Generate a synthetic city (points + regions).
//   2. Register both tables with the SpatialEngine.
//   3. Run the paper's aggregation query with a 10 m distance bound —
//      no exact geometric test is ever executed.
//   4. Compare against the exact answer and inspect the guarantees.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/dbsa.h"

int main() {
  using namespace dbsa;

  // 1. A 16.4 km synthetic city: 200K taxi pickups, 32 districts.
  data::TaxiConfig city;
  city.universe = geom::Box(0, 0, 16384, 16384);
  data::PointSet pickups = data::GenerateTaxiPoints(200000, city);

  data::RegionConfig district_config;
  district_config.universe = city.universe;
  district_config.num_polygons = 32;
  district_config.target_avg_vertices = 40;
  data::RegionSet districts = data::GenerateRegions(district_config);

  // 2. Register with the engine.
  core::SpatialEngine engine;
  engine.SetPoints(std::move(pickups));
  engine.SetRegions(std::move(districts));

  // 3. COUNT(*) GROUP BY district, approximate with a 10 m bound. The
  //    optimizer picks the plan; stats.explain says why.
  const core::AggregateAnswer approx =
      engine.Aggregate(join::AggKind::kCount, core::Attr::kNone,
                       /*epsilon=*/10.0);
  std::printf("plan: %s\n", query::PlanKindName(approx.stats.plan));
  std::printf("      %s\n", approx.stats.explain.c_str());
  std::printf("elapsed: %.2f ms, exact geometry tests: %zu, achieved bound: %.2f m\n\n",
              approx.stats.elapsed_ms, approx.stats.pip_tests,
              approx.stats.achieved_epsilon);

  // 4. Exact reference (epsilon = 0 forces the exact plan).
  const core::AggregateAnswer exact =
      engine.Aggregate(join::AggKind::kCount, core::Attr::kNone, /*epsilon=*/0.0);

  std::printf("district | approx count | exact count | rel. error\n");
  std::printf("---------+--------------+-------------+-----------\n");
  for (size_t r = 0; r < 8 && r < approx.rows.size(); ++r) {
    const double a = approx.rows[r].value;
    const double e = exact.rows[r].value;
    std::printf("%8zu | %12.0f | %11.0f | %8.3f%%\n", r, a, e,
                e > 0 ? 100.0 * (a - e) / e : 0.0);
  }
  std::printf("... (%zu districts total)\n\n", approx.rows.size());

  // Bonus: an ad-hoc polygon count with a guaranteed result range.
  geom::Polygon query_region =
      geom::ParseWktPolygon(
          "POLYGON ((4000 4000, 12000 5000, 12000 12000, 8000 10000, 4000 12000, "
          "4000 4000))")
          .value();
  const join::ResultRange range = engine.CountInPolygon(query_region, /*epsilon=*/25.0);
  std::printf("ad-hoc region count: %.0f, guaranteed within [%.0f, %.0f]\n",
              range.estimate, range.lo, range.hi);
  return 0;
}
