// taxi_dashboard: the paper's motivating application (Section 1) — an
// Uber-Movement-style level-of-detail exploration. The user starts at a
// city-wide overview and zooms toward a hotspot; each zoom level needs
// pixel accuracy only, so the distance bound tightens with the viewport
// (epsilon = one screen pixel) and the engine answers each level without
// exact geometry tests.
//
// Build & run:  ./build/examples/taxi_dashboard

#include <cstdio>

#include "core/dbsa.h"
#include "util/timer.h"

int main() {
  using namespace dbsa;

  const geom::Box universe(0, 0, 16384, 16384);
  data::TaxiConfig city;
  city.universe = universe;
  const data::PointSet pickups = data::GenerateTaxiPoints(500000, city);

  data::RegionConfig region_config;
  region_config.universe = universe;
  region_config.num_polygons = 64;
  region_config.target_avg_vertices = 30;
  const data::RegionSet districts = data::GenerateRegions(region_config);

  core::SpatialEngine engine;
  engine.SetPoints(pickups);
  engine.SetRegions(districts);

  // Zoom from the full city toward the downtown hotspot; a 1024px screen.
  const geom::Point downtown{16384 * 0.45, 16384 * 0.55};
  const auto zoom_steps = data::MakeZoomSequence(universe, downtown, 6, 1024);

  std::printf("level-of-detail exploration (screen: 1024px)\n");
  std::printf("zoom | viewport (km) | eps (m) | visible pickups | latency (ms)\n");
  std::printf("-----+---------------+---------+-----------------+-------------\n");
  for (size_t z = 0; z < zoom_steps.size(); ++z) {
    const data::ZoomStep& step = zoom_steps[z];
    // The visible viewport as a query polygon.
    geom::Polygon viewport_poly(geom::Ring{step.viewport.min,
                                           {step.viewport.max.x, step.viewport.min.y},
                                           step.viewport.max,
                                           {step.viewport.min.x, step.viewport.max.y}});
    viewport_poly.Normalize();
    Timer timer;
    const join::ResultRange visible =
        engine.CountInPolygon(viewport_poly, step.epsilon);
    const double ms = timer.Millis();
    std::printf("%4zu | %13.2f | %7.2f | %15.0f | %12.3f\n", z,
                step.viewport.Width() / 1000.0, step.epsilon, visible.estimate, ms);
  }

  // At the deepest zoom, break the viewport down by district with the
  // same pixel-level bound (the "choropleth" view).
  const data::ZoomStep& deepest = zoom_steps.back();
  std::printf("\nchoropleth at zoom %zu (eps=%.2fm): top districts by pickups\n",
              zoom_steps.size() - 1, deepest.epsilon);
  const core::AggregateAnswer per_district = engine.Aggregate(
      join::AggKind::kCount, core::Attr::kNone, deepest.epsilon, core::Mode::kAuto);
  // Report the three busiest districts.
  std::vector<core::AggregateRow> rows = per_district.rows;
  std::sort(rows.begin(), rows.end(),
            [](const core::AggregateRow& a, const core::AggregateRow& b) {
              return a.value > b.value;
            });
  for (size_t i = 0; i < 3 && i < rows.size(); ++i) {
    std::printf("  district %u: ~%.0f pickups (guaranteed within [%.0f, %.0f])\n",
                rows[i].region, rows[i].value, rows[i].lo, rows[i].hi);
  }
  std::printf("plan used: %s\n", query::PlanKindName(per_district.stats.plan));
  return 0;
}
