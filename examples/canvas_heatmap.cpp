// canvas_heatmap: the Section 4 canvas algebra in action — render the
// point table into a rasterized canvas whose pixel size follows a
// distance bound, mask it with a district polygon (blend + mask
// composition), and print both heatmaps as ASCII art. This is the
// operator pipeline the BRJ plan composes internally.
//
// Build & run:  ./build/examples/canvas_heatmap

#include <cstdio>

#include "canvas/brj.h"
#include "canvas/ops.h"
#include "canvas/render.h"
#include "core/dbsa.h"

namespace {

void PrintHeatmap(const dbsa::canvas::Canvas& canvas, const char* title) {
  // Downsample the canvas to a terminal-sized view with the affine
  // operator, then print intensity ramps.
  const dbsa::canvas::Canvas view =
      dbsa::canvas::AffineResample(canvas, 64, 32, canvas.viewport());
  float max_v = 1e-6f;
  for (const dbsa::canvas::Rgba& px : view.data()) max_v = std::max(max_v, px.r);
  const char* ramp = " .:-=+*#%@";
  std::printf("%s (max %.0f points/pixel)\n", title, max_v);
  for (int y = view.height() - 1; y >= 0; --y) {  // North up.
    for (int x = 0; x < view.width(); ++x) {
      const float v = view.At(x, y).r / max_v;
      const int idx = std::min(static_cast<int>(v * 9.99f), 9);
      std::putchar(ramp[idx]);
    }
    std::putchar('\n');
  }
  std::putchar('\n');
}

}  // namespace

int main() {
  using namespace dbsa;

  const geom::Box universe(0, 0, 8192, 8192);
  data::TaxiConfig city;
  city.universe = universe;
  const data::PointSet pickups = data::GenerateTaxiPoints(300000, city);

  // Distance bound 32 m -> pixel size 32/sqrt(2) m.
  const double eps = 32.0;
  const double pixel = eps / 1.4142135623730951;
  const int side = static_cast<int>(universe.Width() / pixel);
  canvas::Canvas point_canvas(side, side, universe);

  // Render pass: blend all pickups into the canvas (r = count per pixel).
  canvas::ScatterPoints(&point_canvas, pickups.locs.data(), pickups.fare.data(),
                        pickups.size());
  PrintHeatmap(point_canvas, "city-wide pickup density");

  // A concave district of interest; rasterize its stencil and mask.
  geom::Polygon district =
      geom::ParseWktPolygon(
          "POLYGON ((1500 3000, 4200 2200, 6800 3600, 5800 5200, 6400 7000, "
          "3600 6200, 2200 6800, 2600 4800, 1500 3000))")
          .value();
  canvas::Canvas stencil(side, side, universe);
  canvas::FillPolygon(&stencil, district);

  // mask(point_canvas, stencil): keep pixels covered by the district.
  canvas::Canvas masked = point_canvas;
  {
    const auto& sten = stencil.data();
    auto& data = masked.data();
    for (size_t i = 0; i < data.size(); ++i) {
      if (sten[i].a <= 0.f) data[i] = canvas::Rgba();
    }
  }
  PrintHeatmap(masked, "district-of-interest pickups (blend+mask composition)");

  // Reduce: the aggregation the BRJ plan would emit for this district.
  const canvas::Rgba totals = canvas::Reduce(masked);
  std::printf("district aggregate: %.0f pickups, $%.0f total fares "
              "(within %.0fm of the true boundary)\n",
              totals.r, totals.g, eps);
  return 0;
}
