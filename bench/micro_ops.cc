// MICRO — google-benchmark micro-benchmarks for the primitive operations
// whose costs explain the figure-level results:
//   * PIP cost vs polygon vertex count (drives Figure 6's ordering),
//   * rasterization throughput (the "compute approximations on the fly"
//     claim of Section 1),
//   * Morton vs Hilbert encode, and
//   * RS vs BS vs B+-tree lookup latency (Figure 4a's inner loop).

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "sfc/hilbert.h"

namespace dbsa {
namespace {

geom::Polygon testing_polygon(int vertices);

void BM_PointInPolygon(benchmark::State& state) {
  const int vertices = static_cast<int>(state.range(0));
  const geom::Polygon poly = testing_polygon(vertices);
  Rng rng(7);
  std::vector<geom::Point> probes;
  for (int i = 0; i < 1024; ++i) {
    probes.push_back({rng.Uniform(poly.bounds().min.x, poly.bounds().max.x),
                      rng.Uniform(poly.bounds().min.y, poly.bounds().max.y)});
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(poly.Contains(probes[i++ & 1023]));
  }
  state.SetItemsProcessed(state.iterations());
}

// Regular star-ish polygon with the requested vertex count.
geom::Polygon testing_polygon(int vertices) {
  Rng rng(42);
  geom::Ring ring;
  for (int i = 0; i < vertices; ++i) {
    const double angle = 2.0 * 3.141592653589793 * i / vertices;
    const double r = rng.Uniform(800.0, 1000.0);
    ring.push_back({5000 + r * std::cos(angle), 5000 + r * std::sin(angle)});
  }
  geom::Polygon poly(std::move(ring));
  poly.Normalize();
  return poly;
}

void BM_RasterizePolygon(benchmark::State& state) {
  const geom::Polygon poly = testing_polygon(64);
  const raster::Grid grid({0, 0}, 16384.0);
  const int level = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(raster::RasterizePolygon(poly, grid, level));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_HrBuildEpsilon(benchmark::State& state) {
  const geom::Polygon poly = testing_polygon(64);
  const raster::Grid grid({0, 0}, 16384.0);
  const double eps = static_cast<double>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(raster::HierarchicalRaster::BuildEpsilon(poly, grid, eps));
  }
}

void BM_MortonEncode(benchmark::State& state) {
  Rng rng(1);
  uint32_t x = static_cast<uint32_t>(rng.Next());
  uint32_t y = static_cast<uint32_t>(rng.Next());
  for (auto _ : state) {
    benchmark::DoNotOptimize(sfc::MortonEncode(x, y));
    x += 77;
    y += 131;
  }
}

void BM_HilbertEncode(benchmark::State& state) {
  Rng rng(1);
  uint32_t x = static_cast<uint32_t>(rng.Next()) & 0xffffff;
  uint32_t y = static_cast<uint32_t>(rng.Next()) & 0xffffff;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sfc::HilbertEncode(x & 0xffffff, y & 0xffffff, 24));
    x += 77;
    y += 131;
  }
}

struct LookupFixture {
  join::PointIndex index;
  std::vector<uint64_t> probes;

  static LookupFixture& Get() {
    static LookupFixture* fixture = [] {
      auto* f = new LookupFixture{
          [] {
            const data::PointSet points = bench::BenchPoints(1000000);
            const raster::Grid grid({0, 0}, 16384.0);
            return join::PointIndex(points.locs.data(), nullptr, points.size(), grid);
          }(),
          {}};
      Rng rng(3);
      const raster::Grid grid({0, 0}, 16384.0);
      for (int i = 0; i < 4096; ++i) {
        f->probes.push_back(grid.LeafKey(
            {rng.Uniform(0, 16384), rng.Uniform(0, 16384)}));
      }
      return f;
    }();
    return *fixture;
  }
};

void BM_LookupSearchStrategy(benchmark::State& state) {
  LookupFixture& f = LookupFixture::Get();
  const auto strategy = static_cast<join::SearchStrategy>(state.range(0));
  // Drive through QueryCells on a singleton cell per probe key.
  size_t i = 0;
  for (auto _ : state) {
    const uint64_t key = f.probes[i++ & 4095];
    const raster::CellId cell = raster::CellId::FromLeafKey(key).Parent(18);
    benchmark::DoNotOptimize(f.index.QueryCellRange(cell, strategy));
  }
}

}  // namespace
}  // namespace dbsa

BENCHMARK(dbsa::BM_PointInPolygon)->Arg(14)->Arg(31)->Arg(128)->Arg(663);
BENCHMARK(dbsa::BM_RasterizePolygon)->Arg(8)->Arg(10)->Arg(12);
BENCHMARK(dbsa::BM_HrBuildEpsilon)->Arg(64)->Arg(16)->Arg(4);
BENCHMARK(dbsa::BM_MortonEncode);
BENCHMARK(dbsa::BM_HilbertEncode);
BENCHMARK(dbsa::BM_LookupSearchStrategy)
    ->Arg(static_cast<int>(dbsa::join::SearchStrategy::kBinarySearch))
    ->Arg(static_cast<int>(dbsa::join::SearchStrategy::kRadixSpline))
    ->Arg(static_cast<int>(dbsa::join::SearchStrategy::kBTree));

BENCHMARK_MAIN();
