// FIG4b — impact of raster precision on result quality (Figure 4b): the
// number of qualifying points per method, relative to the exact count.
// MBR-filter baselines are agnostic to precision and over-count; the
// cell-index counts converge to exact as the per-polygon cell budget
// grows (512 cells ~= exact in the paper).

#include <cstdio>

#include "bench_util.h"

namespace dbsa {
namespace {

void Run(size_t n_points, size_t n_queries) {
  PrintBanner("Figure 4(b): qualifying points vs raster precision");
  bench::PrintScale(HumanCount(static_cast<double>(n_points)) + " points, " +
                    std::to_string(n_queries) + " census-like query polygons");

  const data::PointSet points = bench::BenchPoints(n_points);
  const data::RegionSet census = bench::BenchCensus(n_queries);
  const raster::Grid grid({0, 0}, bench::BenchUniverse().Width());
  const join::PointIndex index(points.locs.data(), nullptr, points.size(), grid);

  // Exact counts by PIP (the reference).
  double exact_total = 0;
  for (const geom::Polygon& poly : census.polys) {
    for (const geom::Point& p : points.locs) {
      if (poly.bounds().Contains(p) && poly.Contains(p)) exact_total += 1;
    }
  }

  // MBR-filter count (precision-agnostic baselines all return this).
  double mbr_total = 0;
  for (const geom::Polygon& poly : census.polys) {
    for (const geom::Point& p : points.locs) {
      if (poly.bounds().Contains(p)) mbr_total += 1;
    }
  }

  TablePrinter table({"method", "qualifying points", "vs exact"});
  table.AddRow({"exact (PIP)", TablePrinter::Num(exact_total, 10), "1.000"});
  table.AddRow({"MBR filter (R*/Quad/STR/Kd)", TablePrinter::Num(mbr_total, 10),
                TablePrinter::Num(mbr_total / exact_total, 4)});
  for (const size_t budget : {32u, 128u, 512u}) {
    double total = 0;
    for (const geom::Polygon& poly : census.polys) {
      total += index.QueryPolygon(poly, budget, join::SearchStrategy::kRadixSpline)
                   .count;
    }
    table.AddRow({"RS(" + std::to_string(budget) + ")", TablePrinter::Num(total, 10),
                  TablePrinter::Num(total / exact_total, 4)});
  }
  table.Print();
  PrintNote("");
  PrintNote("expected shape (paper Fig. 4b): RS(512) is almost exact; RS(32) over-");
  PrintNote("counts moderately (conservative cells); the MBR filter is loosest.");
}

}  // namespace
}  // namespace dbsa

int main(int argc, char** argv) {
  dbsa::Run(dbsa::bench::FlagSize(argc, argv, "points", 500000),
            dbsa::bench::FlagSize(argc, argv, "queries", 100));
  return 0;
}
