// FIG4a — data access (Section 3, Figure 4a): cumulative time to count
// the points inside every query polygon.
//
//   * RS(32/128/512): linearized point index + RadixSpline searches, with
//     hierarchical-raster query approximations of 32/128/512 cells.
//   * BS(512): same pipeline, binary search instead of the learned index.
//   * R*-tree / Quadtree / STR R-tree / Kd-tree: MBR-filter baselines
//     (they count the points in each polygon's bounding box).
//
// Paper setup: 39,200 Census query polygons over 1.2B taxi points, radix
// bits 25, spline error 32. Ours is scaled (see the banner); radix bits
// scale with log2(n).

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "spatial/kdtree.h"
#include "spatial/quadtree.h"
#include "spatial/rstar_tree.h"
#include "spatial/str_rtree.h"

namespace dbsa {
namespace {

void Run(size_t n_points, size_t n_queries) {
  PrintBanner("Figure 4(a): point-polygon containment query performance");
  bench::PrintScale(HumanCount(static_cast<double>(n_points)) + " points, " +
                    std::to_string(n_queries) +
                    " census-like query polygons (paper: 1.2B points, 39.2K)");

  const data::PointSet points = bench::BenchPoints(n_points);
  const data::RegionSet census = bench::BenchCensus(n_queries);
  const raster::Grid grid({0, 0}, bench::BenchUniverse().Width());

  TablePrinter table({"method", "build (ms)", "cumulative query (ms)",
                      "per query (us)", "index bytes"});

  // --- Cell-index pipeline (RS / BS).
  Timer build_timer;
  join::PointIndex::Options opts;
  opts.radix_bits =
      std::max(8, static_cast<int>(std::log2(static_cast<double>(n_points))) - 2);
  opts.spline_error = 32;
  const join::PointIndex index(points.locs.data(), nullptr, points.size(), grid, opts);
  const double index_build_ms = build_timer.Millis();

  // Precompute query-cell approximations outside the timed region (the
  // paper's query polygons are fixed; their approximations are inputs).
  auto run_cells = [&](size_t budget, join::SearchStrategy strategy,
                       const std::string& label) {
    std::vector<raster::HierarchicalRaster> hrs;
    hrs.reserve(census.polys.size());
    for (const geom::Polygon& poly : census.polys) {
      hrs.push_back(raster::HierarchicalRaster::BuildBudget(poly, grid, budget));
    }
    Timer timer;
    double total = 0.0;
    for (const raster::HierarchicalRaster& hr : hrs) {
      total += index.QueryCells(hr, strategy).count;
    }
    const double ms = timer.Millis();
    table.AddRow({label, TablePrinter::Num(index_build_ms, 4),
                  TablePrinter::Num(ms, 4),
                  TablePrinter::Num(ms * 1000.0 / static_cast<double>(hrs.size()), 4),
                  std::to_string(index.MemoryBytes(strategy))});
    (void)total;
  };
  run_cells(32, join::SearchStrategy::kRadixSpline, "RS(32)");
  run_cells(128, join::SearchStrategy::kRadixSpline, "RS(128)");
  run_cells(512, join::SearchStrategy::kRadixSpline, "RS(512)");
  run_cells(512, join::SearchStrategy::kBinarySearch, "BS(512)");
  run_cells(512, join::SearchStrategy::kBTree, "B+tree(512)");

  // --- MBR-filter spatial baselines (precision-agnostic).
  auto run_spatial = [&](auto&& build, auto&& count_box, const std::string& label) {
    Timer bt;
    auto idx = build();
    const double build_ms = bt.Millis();
    Timer timer;
    size_t total = 0;
    for (const geom::Polygon& poly : census.polys) {
      total += count_box(idx, poly.bounds());
    }
    const double ms = timer.Millis();
    table.AddRow(
        {label, TablePrinter::Num(build_ms, 4), TablePrinter::Num(ms, 4),
         TablePrinter::Num(ms * 1000.0 / static_cast<double>(census.polys.size()), 4),
         std::to_string(idx.MemoryBytes())});
    (void)total;
  };

  run_spatial(
      [&] {
        spatial::RStarTree tree;
        for (size_t i = 0; i < points.size(); ++i) {
          tree.Insert(geom::Box(points.locs[i], points.locs[i]),
                      static_cast<uint32_t>(i));
        }
        return tree;
      },
      [](const spatial::RStarTree& tree, const geom::Box& box) {
        size_t count = 0;
        tree.VisitBox(box, [&count](uint32_t) { ++count; });
        return count;
      },
      "R*-tree (MBR)");

  run_spatial(
      [&] {
        return spatial::QuadTree(points.locs.data(), points.size(),
                                 bench::BenchUniverse());
      },
      [](const spatial::QuadTree& tree, const geom::Box& box) {
        size_t count = 0;
        tree.VisitBox(box, [&count](uint32_t) { ++count; });
        return count;
      },
      "Quadtree (MBR)");

  run_spatial(
      [&] {
        std::vector<spatial::StrRTree::Item> items;
        items.reserve(points.size());
        for (size_t i = 0; i < points.size(); ++i) {
          items.push_back(
              {geom::Box(points.locs[i], points.locs[i]), static_cast<uint32_t>(i)});
        }
        return spatial::StrRTree::Build(std::move(items));
      },
      [](const spatial::StrRTree& tree, const geom::Box& box) {
        size_t count = 0;
        tree.VisitBox(box, [&count](uint32_t) { ++count; });
        return count;
      },
      "STR R-tree (MBR)");

  run_spatial(
      [&] { return spatial::KdTree(points.locs.data(), points.size()); },
      [](const spatial::KdTree& tree, const geom::Box& box) {
        size_t count = 0;
        tree.VisitBox(box, [&count](uint32_t) { ++count; });
        return count;
      },
      "Kd-tree (MBR)");

  table.Print();
  PrintNote("");
  PrintNote("expected shape (paper Fig. 4a): RS variants beat the Boost R*-tree by");
  PrintNote(">=10x and BS by ~35%; Quadtree/STR/Kd-tree are competitive on time but");
  PrintNote("(Fig. 4b) return far looser counts since they only filter by MBR.");
}

}  // namespace
}  // namespace dbsa

int main(int argc, char** argv) {
  dbsa::Run(dbsa::bench::FlagSize(argc, argv, "points", 2000000),
            dbsa::bench::FlagSize(argc, argv, "queries", 400));
  return 0;
}
