// ABL-SFC — ablation of Section 3's linearization choice: Morton (Z) vs
// Hilbert curve for the point index. Both give contiguous key ranges per
// quadtree cell; Hilbert's better locality shortens the searched windows
// slightly, Morton's encode is cheaper. The paper mentions both; we
// quantify the trade.

#include <cstdio>

#include "bench_util.h"
#include "index/sorted_array.h"
#include "sfc/hilbert.h"

namespace dbsa {
namespace {

void Run(size_t n_points, size_t n_queries) {
  PrintBanner("Ablation: Morton vs Hilbert linearization for the point index");
  bench::PrintScale(HumanCount(static_cast<double>(n_points)) + " points, " +
                    std::to_string(n_queries) + " query polygons, 128-cell budget");

  const data::PointSet points = bench::BenchPoints(n_points);
  const raster::Grid grid({0, 0}, bench::BenchUniverse().Width());
  const data::RegionSet queries = bench::BenchCensus(n_queries);
  constexpr int kMax = raster::CellId::kMaxLevel;

  // Precompute query cells once (shared by both linearizations).
  std::vector<raster::HierarchicalRaster> hrs;
  for (const geom::Polygon& poly : queries.polys) {
    hrs.push_back(raster::HierarchicalRaster::BuildBudget(poly, grid, 128));
  }

  TablePrinter table({"curve", "encode (ms)", "build (ms)", "query (ms)", "count"});

  for (const bool hilbert : {false, true}) {
    Timer encode_timer;
    std::vector<uint64_t> keys(points.size());
    for (size_t i = 0; i < points.size(); ++i) {
      uint32_t ix, iy;
      grid.PointToXY(points.locs[i], kMax, &ix, &iy);
      keys[i] = hilbert ? sfc::HilbertEncode(ix, iy, kMax) : sfc::MortonEncode(ix, iy);
    }
    const double encode_ms = encode_timer.Millis();

    Timer build_timer;
    const index::SortedKeyArray index = index::SortedKeyArray::Build(std::move(keys));
    const double build_ms = build_timer.Millis();

    // Query: each HR cell is one contiguous range under either curve
    // (quadtree cells are contiguous on both).
    Timer query_timer;
    double total = 0;
    for (const raster::HierarchicalRaster& hr : hrs) {
      for (const raster::HrCell& cell : hr.cells()) {
        uint32_t cx, cy;
        cell.id.ToXY(&cx, &cy);
        const int below = kMax - cell.id.level();
        uint64_t lo_key, span;
        if (hilbert) {
          const uint64_t prefix = sfc::HilbertEncode(cx, cy, cell.id.level());
          lo_key = prefix << (2 * below);
          span = 1ull << (2 * below);
        } else {
          lo_key = cell.id.LeafKeyMin();
          span = cell.id.LeafKeyMax() - cell.id.LeafKeyMin() + 1;
        }
        const size_t lo = index.LowerBound(lo_key);
        const size_t hi = index.LowerBound(lo_key + span);
        total += static_cast<double>(hi - lo);
      }
    }
    const double query_ms = query_timer.Millis();
    table.AddRow({hilbert ? "Hilbert" : "Morton (Z)", TablePrinter::Num(encode_ms, 4),
                  TablePrinter::Num(build_ms, 4), TablePrinter::Num(query_ms, 4),
                  TablePrinter::Num(total, 10)});
  }
  table.Print();
  PrintNote("");
  PrintNote("expected shape: identical counts (both curves make quadtree cells");
  PrintNote("contiguous); Morton encodes faster; query times are close — which is");
  PrintNote("why the paper defaults to the cheaper Z-curve for linearization.");
}

}  // namespace
}  // namespace dbsa

int main(int argc, char** argv) {
  dbsa::Run(dbsa::bench::FlagSize(argc, argv, "points", 1000000),
            dbsa::bench::FlagSize(argc, argv, "queries", 200));
  return 0;
}
