// ABL-TUNE — tuning ablations for the two index structures the paper
// parameterizes: RadixSpline (radix bits x spline error; the paper uses
// 25 bits / error 32 at 1.2B keys) and ACT (radix width, i.e. quadtree
// levels consumed per trie node).

#include <cstdio>

#include "bench_util.h"

namespace dbsa {
namespace {

void RunRadixSpline(size_t n_points, size_t n_queries) {
  PrintBanner("Ablation: RadixSpline radix bits x spline error");
  bench::PrintScale(HumanCount(static_cast<double>(n_points)) + " points, " +
                    std::to_string(n_queries) + " query polygons, 512-cell budget");

  const data::PointSet points = bench::BenchPoints(n_points);
  const raster::Grid grid({0, 0}, bench::BenchUniverse().Width());
  const data::RegionSet queries = bench::BenchCensus(n_queries);
  std::vector<raster::HierarchicalRaster> hrs;
  for (const geom::Polygon& poly : queries.polys) {
    hrs.push_back(raster::HierarchicalRaster::BuildBudget(poly, grid, 512));
  }

  TablePrinter table({"radix bits", "spline error", "build (ms)", "query (ms)",
                      "index bytes"});
  for (const int bits : {10, 14, 18}) {
    for (const size_t err : {8u, 32u, 128u}) {
      join::PointIndex::Options opts;
      opts.radix_bits = bits;
      opts.spline_error = err;
      Timer build_timer;
      const join::PointIndex index(points.locs.data(), nullptr, points.size(), grid,
                                   opts);
      const double build_ms = build_timer.Millis();
      Timer query_timer;
      double total = 0;
      for (const raster::HierarchicalRaster& hr : hrs) {
        total += index.QueryCells(hr, join::SearchStrategy::kRadixSpline).count;
      }
      const double query_ms = query_timer.Millis();
      table.AddRow({std::to_string(bits), std::to_string(err),
                    TablePrinter::Num(build_ms, 4), TablePrinter::Num(query_ms, 4),
                    std::to_string(index.MemoryBytes(
                        join::SearchStrategy::kRadixSpline))});
      (void)total;
    }
  }
  table.Print();
  PrintNote("expected shape: more radix bits / smaller error -> bigger index,");
  PrintNote("faster lookups, with diminishing returns past the data's entropy.");
}

void RunActWidth(size_t n_points) {
  PrintBanner("Ablation: ACT radix width (quad levels per trie node)");
  bench::PrintScale(HumanCount(static_cast<double>(n_points)) +
                    " points, neighborhoods-like regions, eps=4m");

  const data::PointSet points = bench::BenchPoints(n_points);
  const data::RegionSet regions = bench::BenchNeighborhoods();
  const raster::Grid grid({0, 0}, bench::BenchUniverse().Width());
  const join::JoinInput in = bench::MakeInput(points, regions);

  TablePrinter table({"levels/node", "fanout", "build (ms)", "probe (ms)",
                      "index bytes"});
  for (const int levels : {1, 2, 3, 4}) {
    join::ActJoinOptions opts;
    opts.epsilon = 4.0;
    opts.levels_per_node = levels;
    const join::JoinStats stats = join::ActJoin(in, join::AggKind::kCount, grid, opts);
    table.AddRow({std::to_string(levels), std::to_string(1 << (2 * levels)),
                  TablePrinter::Num(stats.build_ms, 4),
                  TablePrinter::Num(stats.probe_ms, 4),
                  std::to_string(stats.index_bytes)});
  }
  table.Print();
  PrintNote("expected shape: wider nodes -> shallower probes (faster) but more slot");
  PrintNote("replication (bigger); 3 levels/node (fanout 64) is the sweet spot.");
}

}  // namespace
}  // namespace dbsa

int main(int argc, char** argv) {
  const size_t n = dbsa::bench::FlagSize(argc, argv, "points", 1000000);
  dbsa::RunRadixSpline(n, dbsa::bench::FlagSize(argc, argv, "queries", 100));
  dbsa::RunActWidth(n);
  return 0;
}
