// FIG7 — Bounded Raster Join (Section 5.2, Figure 7): BRJ vs the accurate
// "GPU baseline" (1024^2 grid index + PIP) while the distance bound
// shrinks 10m -> 1m. Tighter bounds need higher canvas resolutions; when
// the resolution exceeds the device texture limit the canvas is
// subdivided and BRJ's cost jumps — the paper's crossover (8.5x faster at
// 10m, slower at 1m). Count accuracy (median relative error per polygon)
// is reported alongside, as in the paper (~0.15% at 10m).

#include <cstdio>

#include "bench_util.h"
#include "canvas/brj.h"

namespace dbsa {
namespace {

void Run(size_t n_points) {
  PrintBanner("Figure 7: Bounded Raster Join vs GPU-baseline grid join");
  // A compact 8.2km city keeps the software-rasterized canvases tractable.
  const geom::Box universe(0, 0, 8192.0, 8192.0);
  bench::PrintScale(HumanCount(static_cast<double>(n_points)) +
                    " points, 289 neighborhood-like polygons, 8.2km universe "
                    "(paper: 600M points, 260 NYC neighborhoods, GTX 1060)");

  data::TaxiConfig taxi_config;
  taxi_config.universe = universe;
  const data::PointSet points = data::GenerateTaxiPoints(n_points, taxi_config);
  const data::RegionSet regions =
      data::GenerateRegions(data::NeighborhoodsConfig(universe));
  const join::JoinInput in = bench::MakeInput(points, regions);

  // Exact reference (for the error column) and the GPU baseline.
  const join::JoinStats baseline =
      join::GridPipJoin(in, join::AggKind::kCount, /*resolution=*/1024);
  const double baseline_ms = baseline.build_ms + baseline.probe_ms;

  TablePrinter table({"distance bound", "canvas px/side", "tiles", "points pass (ms)",
                      "polygons pass (ms)", "total (ms)", "vs baseline",
                      "median count err"});
  table.AddRow({"GPU baseline (exact)", "-", "-", "-", "-",
                TablePrinter::Num(baseline_ms, 4), "1.00x", "0"});

  for (const double eps : {10.0, 5.0, 2.5, 1.0}) {
    canvas::BrjOptions opts;
    opts.epsilon = eps;
    opts.device.max_canvas_side = 2048;
    Timer timer;
    const canvas::BrjResult brj = canvas::BoundedRasterJoin(
        in.points, nullptr, in.num_points, regions.polys, regions.region_of,
        regions.num_regions, universe, opts);
    const double total_ms = timer.Millis();

    Percentiles err;
    for (size_t r = 0; r < regions.num_regions; ++r) {
      if (baseline.value[r] >= 100) {
        err.Add(std::fabs(brj.count[r] - baseline.value[r]) / baseline.value[r]);
      }
    }
    char eps_label[32];
    std::snprintf(eps_label, sizeof(eps_label), "BRJ %.1fm", eps);
    table.AddRow({eps_label, std::to_string(brj.canvas_side),
                  std::to_string(brj.tiles), TablePrinter::Num(brj.points_pass_ms, 4),
                  TablePrinter::Num(brj.polygons_pass_ms, 4),
                  TablePrinter::Num(total_ms, 4),
                  TablePrinter::Num(baseline_ms / total_ms, 3) + "x",
                  TablePrinter::Num(err.Median() * 100.0, 3) + "%"});
  }
  table.Print();
  PrintNote("");
  PrintNote("expected shape (paper Fig. 7): BRJ is several times faster than the");
  PrintNote("baseline at 10m (paper: 8.5x) with ~0.15% median count error, loses its");
  PrintNote("lead as the bound tightens, and falls behind at 1m once the resolution");
  PrintNote("exceeds the device limit and the canvas must be subdivided (tiles > 1).");
}

}  // namespace
}  // namespace dbsa

int main(int argc, char** argv) {
  dbsa::Run(dbsa::bench::FlagSize(argc, argv, "points", 1000000));
  return 0;
}
