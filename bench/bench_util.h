// Shared helpers for the figure/table benches: scaled dataset
// construction, command-line scaling knobs, and uniform result printing.
//
// Every bench prints (a) the paper's reported numbers for reference and
// (b) our measurements at the bench's (laptop) scale. Absolute times are
// not comparable — the shapes are what EXPERIMENTS.md tracks.

#ifndef DBSA_BENCH_BENCH_UTIL_H_
#define DBSA_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/dbsa.h"
#include "join/si_join.h"
#include "telemetry/histogram.h"
#include "util/random.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/timer.h"

namespace dbsa::bench {

/// Streaming latency percentiles for bench loops, backed by the SAME
/// log2-bucket histogram the telemetry layer scrapes over the wire
/// (telemetry::HistogramData) — one quantile implementation, one error
/// model (bucket-width bounded; see src/telemetry/histogram.h). Use
/// Percentiles (util/stats.h) only where a bench's contract needs EXACT
/// order statistics.
class LatencyRecorder {
 public:
  void Record(double ms) { hist_.Record(ms); }
  double Quantile(double p) const { return hist_.Quantile(p); }
  double MeanMs() const {
    return hist_.count ? hist_.sum_ms / static_cast<double>(hist_.count) : 0.0;
  }
  const telemetry::HistogramData& histogram() const { return hist_; }

 private:
  telemetry::HistogramData hist_;
};

/// Parses "--name=value" style integer flags from argv.
inline size_t FlagSize(int argc, char** argv, const char* name, size_t def) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return static_cast<size_t>(std::strtoull(argv[i] + prefix.size(), nullptr, 10));
    }
  }
  return def;
}

/// Parses "--name=value" style string flags from argv.
inline std::string FlagString(int argc, char** argv, const char* name,
                              const std::string& def = "") {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return def;
}

/// Optional secondary sink for the JSON result lines (--json_out=PATH):
/// every JsonLine::Print also appends the bare JSON object to the file,
/// giving the perf trajectory a stable machine-readable path (the
/// checked-in BENCH_*.json baselines) without grepping human output.
inline std::FILE*& JsonOutFile() {
  static std::FILE* file = nullptr;
  return file;
}

inline void OpenJsonOut(const std::string& path) {
  if (path.empty()) return;
  JsonOutFile() = std::fopen(path.c_str(), "w");
  if (JsonOutFile() == nullptr) {
    std::fprintf(stderr, "cannot open --json_out=%s\n", path.c_str());
  }
}

inline void CloseJsonOut() {
  if (JsonOutFile() != nullptr) {
    std::fclose(JsonOutFile());
    JsonOutFile() = nullptr;
  }
}

/// Standard bench universe: a 16.4 km "city" square. Small enough that a
/// 4 m distance bound produces index sizes that build in seconds on one
/// core, large enough to keep thousands of regions meaningful.
inline geom::Box BenchUniverse() { return geom::Box(0.0, 0.0, 16384.0, 16384.0); }

/// Taxi points over the bench universe.
inline data::PointSet BenchPoints(size_t n, uint64_t seed = 20210111) {
  data::TaxiConfig config;
  config.universe = BenchUniverse();
  config.seed = seed;
  return data::GenerateTaxiPoints(n, config);
}

/// The three region datasets of the paper, scaled. Census polygon count
/// defaults to 1/10th of the paper's 39,200 to keep build times in
/// seconds; vertex complexities match the paper exactly.
inline data::RegionSet BenchBoroughs() {
  return data::GenerateRegions(data::BoroughsConfig(BenchUniverse()));
}
inline data::RegionSet BenchNeighborhoods() {
  return data::GenerateRegions(data::NeighborhoodsConfig(BenchUniverse()));
}
inline data::RegionSet BenchCensus(size_t num_polygons = 3920) {
  return data::GenerateRegions(data::CensusConfig(BenchUniverse(), num_polygons));
}

/// Fills a JoinInput from a point set and region set.
inline join::JoinInput MakeInput(const data::PointSet& points,
                                 const data::RegionSet& regions,
                                 bool with_attrs = false) {
  join::JoinInput in;
  in.points = points.locs.data();
  in.attrs = with_attrs ? points.fare.data() : nullptr;
  in.num_points = points.size();
  in.polys = &regions.polys;
  in.region_of = &regions.region_of;
  in.num_regions = regions.num_regions;
  return in;
}

/// Prints the run configuration banner.
inline void PrintScale(const std::string& what) {
  PrintNote("scale: " + what);
  PrintNote("(single-threaded; shapes, not absolute times, are the target)");
}

/// One machine-readable result record, printed as a single JSON object
/// line prefixed with "JSON " so scripts can grep it out of the human
/// output. The standard emission format for bench measurements.
class JsonLine {
 public:
  explicit JsonLine(const std::string& bench) { Add("bench", bench); }

  JsonLine& Add(const std::string& key, const std::string& value) {
    fields_.push_back("\"" + key + "\": \"" + value + "\"");
    return *this;
  }
  JsonLine& Add(const std::string& key, const char* value) {
    return Add(key, std::string(value));
  }
  JsonLine& Add(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    fields_.push_back("\"" + key + "\": " + buf);
    return *this;
  }
  JsonLine& Add(const std::string& key, size_t value) {
    fields_.push_back("\"" + key + "\": " + std::to_string(value));
    return *this;
  }
  JsonLine& Add(const std::string& key, int value) {
    fields_.push_back("\"" + key + "\": " + std::to_string(value));
    return *this;
  }

  void Print(std::FILE* out = stdout) const {
    PrintTo(out, /*prefix=*/true);
    if (JsonOutFile() != nullptr) {
      PrintTo(JsonOutFile(), /*prefix=*/false);
      std::fflush(JsonOutFile());
    }
  }

 private:
  void PrintTo(std::FILE* out, bool prefix) const {
    std::fputs(prefix ? "JSON {" : "{", out);
    for (size_t i = 0; i < fields_.size(); ++i) {
      std::fputs(i ? ", " : "", out);
      std::fputs(fields_[i].c_str(), out);
    }
    std::fputs("}\n", out);
  }

  std::vector<std::string> fields_;
};

}  // namespace dbsa::bench

#endif  // DBSA_BENCH_BENCH_UTIL_H_
