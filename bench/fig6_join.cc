// FIG6 — main-memory join (Section 5.1, Figure 6): total time of the
// spatial aggregation join on the three region datasets.
//
//   * ACT: epsilon-bounded (4 m) hierarchical raster in an adaptive cell
//     trie; approximate, zero PIP tests.
//   * R*-tree: MBR filter + exact PIP refinement (Boost baseline).
//   * SI: S2ShapeIndex-style coarse raster + residual PIP refinement.
//
// Paper: 1.2B points; Boroughs(5 polys/663 vtx), Neighborhoods(289/30.6),
// Census(39,200/13.6). ACT wins by >2 orders of magnitude on Boroughs and
// >1 on Neighborhoods; the gap narrows on Census (simplest polygons).

#include <cstdio>

#include "bench_util.h"

namespace dbsa {
namespace {

struct Dataset {
  std::string name;
  data::RegionSet regions;
};

void Run(size_t n_points, size_t census_polys) {
  PrintBanner("Figure 6: main-memory join (ACT vs R* vs SI)");
  bench::PrintScale(HumanCount(static_cast<double>(n_points)) +
                    " points; census scaled to " + std::to_string(census_polys) +
                    " polygons (paper: 1.2B points, 39.2K census)");

  const data::PointSet points = bench::BenchPoints(n_points);
  const raster::Grid grid({0, 0}, bench::BenchUniverse().Width());

  std::vector<Dataset> datasets;
  datasets.push_back({"Boroughs", bench::BenchBoroughs()});
  datasets.push_back({"Neighborhoods", bench::BenchNeighborhoods()});
  datasets.push_back({"Census", bench::BenchCensus(census_polys)});

  TablePrinter table({"dataset", "avg vertices", "method", "build (ms)",
                      "probe (ms)", "total (ms)", "PIP tests", "probe speedup vs R*"});

  for (const Dataset& ds : datasets) {
    const join::JoinInput in = bench::MakeInput(points, ds.regions);
    const std::string avg_vtx = TablePrinter::Num(ds.regions.AvgVertices(), 4);

    join::ActJoinOptions act_opts;
    act_opts.epsilon = 4.0;
    const join::JoinStats act = join::ActJoin(in, join::AggKind::kCount, grid, act_opts);
    join::ActJoinOptions refine_opts = act_opts;
    refine_opts.exact_refine = true;
    const join::JoinStats act_refine =
        join::ActJoin(in, join::AggKind::kCount, grid, refine_opts);
    const join::JoinStats rstar = join::RStarMbrJoin(in, join::AggKind::kCount);
    const join::JoinStats si = join::SiJoin(in, join::AggKind::kCount, grid, 64);

    // The paper's Figure 6 reports join (probe) time; index construction
    // is the one-off cost shown in its own column.
    auto add = [&](const char* method, const join::JoinStats& stats) {
      const double total = stats.build_ms + stats.probe_ms;
      table.AddRow({ds.name, avg_vtx, method, TablePrinter::Num(stats.build_ms, 4),
                    TablePrinter::Num(stats.probe_ms, 4), TablePrinter::Num(total, 4),
                    std::to_string(stats.pip_tests),
                    TablePrinter::Num(rstar.probe_ms / stats.probe_ms, 3) + "x"});
    };
    add("ACT (eps=4m)", act);
    add("ACT+refine (exact)", act_refine);
    add("R*-tree (exact)", rstar);
    add("SI (exact)", si);
  }
  table.Print();
  PrintNote("");
  PrintNote("expected shape (paper Fig. 6, on probe time): ACT fastest everywhere;");
  PrintNote("largest win on Boroughs (663 vertices/PIP), smallest on Census (13.6);");
  PrintNote("SI sits between ACT and R* because coarse cells still leave PIP tests.");
  PrintNote("note: ACT pays a larger one-off build (fine rasterization) — the");
  PrintNote("paper's memory table (bench/mem_footprint) shows the same trade.");
}

}  // namespace
}  // namespace dbsa

int main(int argc, char** argv) {
  dbsa::Run(dbsa::bench::FlagSize(argc, argv, "points", 2000000),
            dbsa::bench::FlagSize(argc, argv, "census", 3920));
  return 0;
}
