// FIG2 — the paper's motivating example (Figure 2): counting taxi pickups
// inside a concave region P. The MBR-filtered count is numerically closer
// to exact here yet includes points FAR from P, while the uniform-raster
// count's false positives all lie within the distance bound — the paper's
// argument for distance-bounded semantics.

#include <cstdio>

#include "approx/mbr.h"
#include "bench_util.h"
#include "geom/distance.h"
#include "raster/uniform_raster.h"

namespace dbsa {
namespace {

void Run(size_t n_points) {
  PrintBanner("Figure 2: distance-bounded vs MBR approximate counts");
  bench::PrintScale("1 concave region, " + HumanCount(static_cast<double>(n_points)) +
                    " points (paper: hand-drawn example, exact=18 MBR=22 UR=28)");

  const geom::Box universe = bench::BenchUniverse();
  const data::PointSet points = bench::BenchPoints(n_points);
  // A deeply concave star region mimicking Figure 2's polygon P.
  const geom::Polygon region = [] {
    Rng rng(42);
    geom::Ring ring;
    const geom::Point c{8000, 8000};
    const int n = 14;
    for (int i = 0; i < n; ++i) {
      const double angle = 2.0 * 3.141592653589793 * i / n;
      const double r = (i % 2 == 0) ? 2500.0 : 900.0;  // Star lobes.
      ring.push_back({c.x + r * std::cos(angle), c.y + r * std::sin(angle)});
    }
    geom::Polygon poly(std::move(ring));
    poly.Normalize();
    return poly;
  }();

  const raster::Grid grid({universe.min.x, universe.min.y}, universe.Width());
  const double eps = 150.0;  // Coarse bound, like the figure's large cells.
  const raster::UniformRaster ur = raster::UniformRaster::Build(region, grid, eps);
  const approx::MbrApproximation mbr(region);

  size_t exact = 0, mbr_count = 0, ur_count = 0;
  RunningStats mbr_fp_dist, ur_fp_dist;
  for (const geom::Point& p : points.locs) {
    const bool in_exact = region.bounds().Contains(p) && region.Contains(p);
    const bool in_mbr = mbr.Contains(p);
    const bool in_ur = ur.ApproxContains(p, grid);
    exact += in_exact ? 1 : 0;
    mbr_count += in_mbr ? 1 : 0;
    ur_count += in_ur ? 1 : 0;
    if (in_mbr && !in_exact) mbr_fp_dist.Add(geom::DistanceToPolygon(p, region));
    if (in_ur && !in_exact) ur_fp_dist.Add(geom::DistanceToPolygon(p, region));
  }

  TablePrinter table({"method", "count", "count/exact", "false positives",
                      "max FP distance (m)", "mean FP distance (m)"});
  table.AddRow({"exact PIP", std::to_string(exact), "1.00", "0", "0", "0"});
  table.AddRow({"MBR filter", std::to_string(mbr_count),
                TablePrinter::Num(static_cast<double>(mbr_count) / exact, 3),
                std::to_string(mbr_fp_dist.count()),
                TablePrinter::Num(mbr_fp_dist.max(), 4),
                TablePrinter::Num(mbr_fp_dist.mean(), 4)});
  table.AddRow({"UR (eps=150m)", std::to_string(ur_count),
                TablePrinter::Num(static_cast<double>(ur_count) / exact, 3),
                std::to_string(ur_fp_dist.count()),
                TablePrinter::Num(ur_fp_dist.max(), 4),
                TablePrinter::Num(ur_fp_dist.mean(), 4)});
  table.Print();

  PrintNote("");
  PrintNote("expected shape (paper Sec. 1/2.2): the UR count's false positives all");
  PrintNote("lie within eps=150m of P; the MBR's false positives can be arbitrarily");
  PrintNote("far (up to the corner distance), making that count hard to interpret.");
}

}  // namespace
}  // namespace dbsa

int main(int argc, char** argv) {
  dbsa::Rng warmup(1);
  (void)warmup.Next();
  dbsa::Run(dbsa::bench::FlagSize(argc, argv, "points", 500000));
  return 0;
}
