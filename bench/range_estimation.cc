// DISC-RANGE — Section 6 "Result Range Estimation": with a conservative
// raster, the exact COUNT provably lies in [alpha - eps_b, alpha]. This
// bench verifies 100% empirical coverage across query polygons and
// reports how the interval width shrinks with the distance bound.

#include <cstdio>

#include "bench_util.h"

namespace dbsa {
namespace {

void Run(size_t n_points, size_t n_queries) {
  PrintBanner("Section 6: result-range estimation coverage and width");
  bench::PrintScale(HumanCount(static_cast<double>(n_points)) + " points, " +
                    std::to_string(n_queries) + " query polygons");

  const data::PointSet points = bench::BenchPoints(n_points);
  const raster::Grid grid({0, 0}, bench::BenchUniverse().Width());
  const join::PointIndex index(points.locs.data(), nullptr, points.size(), grid);
  const data::RegionSet queries = bench::BenchCensus(n_queries);

  TablePrinter table({"eps (m)", "coverage", "mean width", "mean width/exact",
                      "mean |estimate-exact|/exact"});
  for (const double eps : {64.0, 16.0, 4.0}) {
    size_t covered = 0, total = 0;
    RunningStats width, rel_width, est_err;
    for (const geom::Polygon& poly : queries.polys) {
      size_t exact = 0;
      for (const geom::Point& p : points.locs) {
        if (poly.bounds().Contains(p) && poly.Contains(p)) ++exact;
      }
      const raster::HierarchicalRaster hr =
          raster::HierarchicalRaster::BuildEpsilon(poly, grid, eps);
      const join::ResultRange range = join::CountRange(
          index.QueryCells(hr, join::SearchStrategy::kRadixSpline));
      ++total;
      covered += range.Contains(static_cast<double>(exact)) ? 1 : 0;
      width.Add(range.Width());
      if (exact > 0) {
        rel_width.Add(range.Width() / static_cast<double>(exact));
        est_err.Add(std::fabs(range.estimate - static_cast<double>(exact)) /
                    static_cast<double>(exact));
      }
    }
    char eps_label[16];
    std::snprintf(eps_label, sizeof(eps_label), "%.0f", eps);
    table.AddRow({eps_label,
                  std::to_string(covered) + "/" + std::to_string(total),
                  TablePrinter::Num(width.mean(), 5),
                  TablePrinter::Num(rel_width.mean(), 4),
                  TablePrinter::Num(est_err.mean(), 4)});
  }
  table.Print();
  PrintNote("");
  PrintNote("expected shape (paper Sec. 6): coverage is always 100% (the bound is");
  PrintNote("guaranteed, not probabilistic); the interval width shrinks linearly");
  PrintNote("with eps; the beta=0.5 point estimate is far tighter than the bound.");
}

}  // namespace
}  // namespace dbsa

int main(int argc, char** argv) {
  dbsa::Run(dbsa::bench::FlagSize(argc, argv, "points", 300000),
            dbsa::bench::FlagSize(argc, argv, "queries", 60));
  return 0;
}
