// ZOOM — the motivating interactive-exploration workload (Section 1):
// level-of-detail zooming with a per-level distance bound of one screen
// pixel. Measures cold (first query, index building) vs warm latency per
// zoom level, and what each approximate plan costs — the interactivity
// argument behind the whole paper.

#include <cstdio>

#include "bench_util.h"

namespace dbsa {
namespace {

void Run(size_t n_points) {
  PrintBanner("Zoom workload: level-of-detail exploration latency");
  bench::PrintScale(HumanCount(static_cast<double>(n_points)) +
                    " points, 1024px viewport, zoom factor 2 per level");

  const geom::Box universe = bench::BenchUniverse();
  const data::PointSet points = bench::BenchPoints(n_points);
  const raster::Grid grid({0, 0}, universe.Width());

  // Cold: building the point index (amortized across the whole session).
  Timer build_timer;
  const join::PointIndex index(points.locs.data(), points.fare.data(), points.size(),
                               grid);
  const double build_ms = build_timer.Millis();
  PrintNote("one-off point-index build: " + TablePrinter::Num(build_ms, 4) + " ms");

  const geom::Point focus{universe.Width() * 0.45, universe.Height() * 0.55};
  const auto steps = data::MakeZoomSequence(universe, focus, 7, 1024);

  TablePrinter table({"zoom", "viewport (km)", "eps (m)", "query cells",
                      "warm latency (ms)", "count", "range width"});
  for (size_t z = 0; z < steps.size(); ++z) {
    geom::Polygon viewport_poly(
        geom::Ring{steps[z].viewport.min,
                   {steps[z].viewport.max.x, steps[z].viewport.min.y},
                   steps[z].viewport.max,
                   {steps[z].viewport.min.x, steps[z].viewport.max.y}});
    viewport_poly.Normalize();
    const raster::HierarchicalRaster hr = raster::HierarchicalRaster::BuildEpsilon(
        viewport_poly, grid, steps[z].epsilon);
    // Warm: median of several runs (streaming log2-bucket quantile — the
    // same histogram the telemetry layer uses; exact order statistics are
    // overkill for a 5-sample median).
    RunningStats lat;
    join::CellAggregate agg;
    for (int run = 0; run < 5; ++run) {
      Timer t;
      agg = index.QueryCells(hr, join::SearchStrategy::kRadixSpline);
      lat.Add(t.Millis());
    }
    const join::ResultRange range = join::CountRange(agg);
    char viewport_km[32];
    std::snprintf(viewport_km, sizeof(viewport_km), "%.2f",
                  steps[z].viewport.Width() / 1000.0);
    table.AddRow({std::to_string(z), viewport_km,
                  TablePrinter::Num(steps[z].epsilon, 4),
                  std::to_string(agg.query_cells),
                  TablePrinter::Num(lat.Quantile(50), 4),
                  TablePrinter::Num(agg.count, 10),
                  TablePrinter::Num(range.Width(), 4)});
  }
  table.Print();
  PrintNote("");
  PrintNote("expected shape: every zoom level answers in interactive time because");
  PrintNote("the bound follows the pixel size — overview queries use coarse cells,");
  PrintNote("deep zooms use fine cells over small areas; work stays roughly flat.");
}

}  // namespace
}  // namespace dbsa

int main(int argc, char** argv) {
  dbsa::Run(dbsa::bench::FlagSize(argc, argv, "points", 1000000));
  return 0;
}
