// ABL-CONS — ablation of Section 2.2's boundary-cell design choice:
// conservative rasters (keep every boundary cell; false positives only)
// vs non-conservative (drop cells under a coverage threshold; two-sided
// error, smaller index, often lower net count error because drops cancel
// overcounts).

#include <cstdio>

#include "bench_util.h"

namespace dbsa {
namespace {

void Run(size_t n_points) {
  PrintBanner("Ablation: conservative vs non-conservative boundary cells");
  bench::PrintScale(HumanCount(static_cast<double>(n_points)) +
                    " points, neighborhoods-like regions, eps=8m");

  const data::PointSet points = bench::BenchPoints(n_points);
  const data::RegionSet regions = bench::BenchNeighborhoods();
  const raster::Grid grid({0, 0}, bench::BenchUniverse().Width());
  const join::JoinInput in = bench::MakeInput(points, regions);
  const join::JoinStats exact = join::BruteForceJoin(in, join::AggKind::kCount);

  TablePrinter table({"mode", "min coverage", "index cells", "one-sided?",
                      "sum |err|", "sum err (signed)", "max region err"});
  for (const double min_coverage : {-1.0, 0.25, 0.5, 0.75}) {
    join::ActJoinOptions opts;
    opts.epsilon = 8.0;
    // Conservative multi-match would double-count in a tiling set, so the
    // conservative row uses center assignment for counting but reports
    // one-sidedness from the raster's perspective.
    opts.assign = join::BoundaryAssign::kCenter;
    std::string label = "center-assign";
    if (min_coverage >= 0) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "non-conservative %.2f", min_coverage);
      label = buf;
    }
    // Build rasters with the requested mode by adjusting raster options
    // through the ACT join (center assignment already drops out-of-center
    // cells; the coverage sweep tightens that further).
    raster::RasterOptions raster_opts;
    raster_opts.conservative = min_coverage < 0;
    raster_opts.min_coverage = min_coverage < 0 ? 0.0 : min_coverage;

    // Manual join so the raster options reach the HR builder.
    Timer timer;
    index::ActIndex act(3);
    size_t cells = 0;
    for (size_t j = 0; j < regions.polys.size(); ++j) {
      const raster::HierarchicalRaster hr = raster::HierarchicalRaster::BuildEpsilon(
          regions.polys[j], grid, opts.epsilon, raster_opts);
      for (const raster::HrCell& cell : hr.cells()) {
        if (cell.boundary && raster_opts.conservative) {
          // Center assignment to keep the tiling a partition.
          if (!regions.polys[j].Contains(grid.CellBox(cell.id).Center())) continue;
        }
        act.Insert(cell.id, static_cast<uint32_t>(j), cell.boundary);
        ++cells;
      }
    }
    std::vector<double> counts(regions.num_regions, 0.0);
    index::ActMatch match;
    for (size_t i = 0; i < points.size(); ++i) {
      if (act.LookupFirst(grid.LeafKey(points.locs[i]), &match)) {
        counts[regions.region_of[match.value]] += 1.0;
      }
    }
    (void)timer;

    double abs_err = 0, signed_err = 0, max_err = 0;
    for (size_t r = 0; r < regions.num_regions; ++r) {
      const double err = counts[r] - exact.value[r];
      abs_err += std::fabs(err);
      signed_err += err;
      max_err = std::max(max_err, std::fabs(err));
    }
    table.AddRow({label,
                  min_coverage < 0 ? "-" : TablePrinter::Num(min_coverage, 3),
                  std::to_string(cells), min_coverage < 0 ? "per-cell" : "no",
                  TablePrinter::Num(abs_err, 6), TablePrinter::Num(signed_err, 6),
                  TablePrinter::Num(max_err, 5)});
  }
  table.Print();
  PrintNote("");
  PrintNote("expected shape: raising min-coverage drops cells (smaller index) and");
  PrintNote("biases counts negative; around 0.5 the over/under errors roughly cancel");
  PrintNote("(the reason non-conservative mode exists); all errors stay eps-local.");
}

}  // namespace
}  // namespace dbsa

int main(int argc, char** argv) {
  dbsa::Run(dbsa::bench::FlagSize(argc, argv, "points", 500000));
  return 0;
}
