// ABL-BUILD — ablation of the HR construction strategy: the bottom-up
// scanline build materializes every finest-level interior cell (cost
// follows polygon AREA), while the top-down refinement only explores
// descendants of boundary cells (cost follows PERIMETER). Both produce
// the same region representation (tests verify classification equality);
// the library switches automatically on the estimated footprint. This
// bench locates the crossover.

#include <cstdio>

#include "bench_util.h"

namespace dbsa {
namespace {

void Run() {
  PrintBanner("Ablation: HR builders (bottom-up scanline vs top-down refine)");
  bench::PrintScale("one 64-vertex star polygon, radius sweep, eps=4m");

  const raster::Grid grid({0, 0}, bench::BenchUniverse().Width());
  TablePrinter table({"polygon radius (m)", "finest cells (est)", "bottom-up (ms)",
                      "top-down (ms)", "cells out", "winner"});

  for (const double radius : {50.0, 150.0, 400.0, 1000.0, 2500.0}) {
    Rng rng(11);
    geom::Ring ring;
    const int n = 64;
    for (int i = 0; i < n; ++i) {
      const double angle = 2.0 * 3.141592653589793 * i / n;
      const double r = rng.Uniform(radius * 0.6, radius);
      ring.push_back({8192 + r * std::cos(angle), 8192 + r * std::sin(angle)});
    }
    geom::Polygon poly(std::move(ring));
    poly.Normalize();

    const int level = grid.LevelForEpsilon(4.0);
    const double cs = grid.CellSize(level);
    const double est_cells =
        (poly.bounds().Width() / cs) * (poly.bounds().Height() / cs);

    Timer t1;
    const raster::HierarchicalRaster bu =
        raster::HierarchicalRaster::BuildEpsilonBottomUp(poly, grid, 4.0);
    const double bu_ms = t1.Millis();
    Timer t2;
    const raster::HierarchicalRaster td =
        raster::HierarchicalRaster::BuildEpsilonTopDown(poly, grid, 4.0);
    const double td_ms = t2.Millis();

    char radius_label[32];
    std::snprintf(radius_label, sizeof(radius_label), "%.0f", radius);
    table.AddRow({radius_label, HumanCount(est_cells), TablePrinter::Num(bu_ms, 4),
                  TablePrinter::Num(td_ms, 4), std::to_string(td.NumCells()),
                  bu_ms < td_ms ? "bottom-up" : "top-down"});
    (void)bu;
  }
  table.Print();
  PrintNote("");
  PrintNote("expected shape: bottom-up wins for small footprints (cheap scanline,");
  PrintNote("no per-level hashing); top-down wins once interior area dwarfs the");
  PrintNote("perimeter — its cost stays ~linear in boundary cells.");
}

}  // namespace
}  // namespace dbsa

int main() {
  dbsa::Run();
  return 0;
}
