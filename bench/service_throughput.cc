// SERVICE — throughput of the concurrent query service: queries/sec vs
// thread count, and what the approximation cache buys on repeated-epsilon
// workloads (the paper's interactive regime: many sessions asking for the
// same regions at the same handful of distance bounds).
//
// Per thread count the bench runs the same mixed workload twice against a
// fresh service: a COLD pass (every HR approximation is built) and a WARM
// pass (every approximation served from the LRU cache). The warm/cold
// ratio is the amortization argument of the serving layer.
//
// Flags: --points=N --regions=N --rounds=N --max_threads=N

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "service/query_service.h"

namespace dbsa {
namespace {

using service::QueryService;
using service::Request;
using service::ServiceOptions;

/// The repeated-epsilon workload: region aggregations across a few
/// distance bounds plus ad-hoc viewport counts (a dashboard's refresh).
std::vector<Request> MakeWorkload(const geom::Box& universe, size_t rounds) {
  std::vector<Request> reqs;
  const std::vector<double> epsilons = {4.0, 16.0, 64.0};
  std::vector<geom::Polygon> viewports;
  Rng rng(2021);
  for (int v = 0; v < 4; ++v) {
    const double w = universe.Width() * rng.Uniform(0.1, 0.3);
    const double x0 = rng.Uniform(universe.min.x, universe.max.x - w);
    const double y0 = rng.Uniform(universe.min.y, universe.max.y - w);
    geom::Polygon viewport(
        geom::Ring{{x0, y0}, {x0 + w, y0}, {x0 + w, y0 + w}, {x0, y0 + w}});
    viewport.Normalize();
    viewports.push_back(std::move(viewport));
  }
  for (size_t round = 0; round < rounds; ++round) {
    for (const double eps : epsilons) {
      reqs.push_back(Request::MakeAggregate(join::AggKind::kCount, core::Attr::kNone,
                                            eps, core::Mode::kPointIndex));
      reqs.push_back(Request::MakeAggregate(join::AggKind::kSum, core::Attr::kFare,
                                            eps, core::Mode::kPointIndex));
      for (const geom::Polygon& viewport : viewports) {
        reqs.push_back(Request::MakeCount(viewport, eps));
      }
    }
  }
  return reqs;
}

struct PassResult {
  double seconds = 0.0;
  double qps = 0.0;
  double hit_ratio = 0.0;
};

PassResult RunPass(QueryService& service, const std::vector<Request>& workload) {
  const service::ApproxCache::Stats before = service.cache_stats();
  Timer timer;
  for (const Request& req : workload) service.Submit(req);
  service.Drain();
  PassResult result;
  result.seconds = timer.Seconds();
  result.qps = static_cast<double>(workload.size()) / result.seconds;
  const service::ApproxCache::Stats after = service.cache_stats();
  const size_t hits = after.hits - before.hits;
  const size_t misses = after.misses - before.misses;
  result.hit_ratio =
      hits + misses ? static_cast<double>(hits) / static_cast<double>(hits + misses)
                    : 0.0;
  return result;
}

void Run(size_t n_points, size_t n_regions, size_t rounds, size_t max_threads) {
  PrintBanner("Service throughput: queries/sec vs threads, cold vs warm cache");
  bench::PrintScale(HumanCount(static_cast<double>(n_points)) + " points, " +
                    std::to_string(n_regions) + " region polygons, " +
                    std::to_string(rounds) + " rounds");

  data::PointSet points = bench::BenchPoints(n_points);
  data::RegionSet regions =
      data::GenerateRegions(data::CensusConfig(bench::BenchUniverse(), n_regions));

  Timer snap_timer;
  const std::shared_ptr<const core::EngineState> snapshot =
      core::BuildEngineState(std::move(points), std::move(regions));
  PrintNote("one-off snapshot build (grid + point index): " +
            TablePrinter::Num(snap_timer.Millis(), 4) + " ms");

  const std::vector<Request> workload =
      MakeWorkload(snapshot->grid.universe(), rounds);
  PrintNote(std::to_string(workload.size()) + " queries per pass");
  if (workload.empty()) {
    PrintNote("empty workload (rounds=0); nothing to measure");
    return;
  }

  TablePrinter table({"threads", "cold qps", "warm qps", "warm/cold", "hit ratio",
                      "cache"});
  for (size_t threads = 1; threads <= max_threads; threads *= 2) {
    ServiceOptions options;
    options.num_threads = threads;
    options.cache_budget_bytes = size_t{256} << 20;
    QueryService service(snapshot, options);  // Fresh (cold) cache.

    const PassResult cold = RunPass(service, workload);
    const PassResult warm = RunPass(service, workload);
    const service::ApproxCache::Stats stats = service.cache_stats();

    table.AddRow({std::to_string(threads), TablePrinter::Num(cold.qps, 5),
                  TablePrinter::Num(warm.qps, 5),
                  TablePrinter::Num(warm.qps / cold.qps, 4),
                  TablePrinter::Num(warm.hit_ratio, 4), HumanBytes(stats.bytes_used)});

    bench::JsonLine("service_throughput")
        .Add("threads", threads)
        .Add("queries", workload.size())
        .Add("cold_qps", cold.qps)
        .Add("warm_qps", warm.qps)
        .Add("warm_over_cold", warm.qps / cold.qps)
        .Add("warm_hit_ratio", warm.hit_ratio)
        .Add("cache_bytes", stats.bytes_used)
        .Add("cache_entries", stats.entries)
        .Print();
  }
  table.Print();
  PrintNote("warm/cold > 1 is the approximation cache amortizing HR builds;");
  PrintNote("qps scaling with threads is the shared-snapshot concurrency.");
}

}  // namespace
}  // namespace dbsa

int main(int argc, char** argv) {
  const size_t n_points = dbsa::bench::FlagSize(argc, argv, "points", 100000);
  const size_t n_regions = dbsa::bench::FlagSize(argc, argv, "regions", 500);
  const size_t rounds = dbsa::bench::FlagSize(argc, argv, "rounds", 3);
  const size_t max_threads = dbsa::bench::FlagSize(argc, argv, "max_threads", 8);
  dbsa::Run(n_points, n_regions, rounds, max_threads);
  return 0;
}
