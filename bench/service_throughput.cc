// SERVICE — throughput of the concurrent query service: queries/sec vs
// thread count, and what the approximation cache buys on repeated-epsilon
// workloads (the paper's interactive regime: many sessions asking for the
// same regions at the same handful of distance bounds).
//
// Per thread count the bench runs the same mixed workload twice against a
// fresh service: a COLD pass (every HR approximation is built) and a WARM
// pass (every approximation served from the LRU cache). The warm/cold
// ratio is the amortization argument of the serving layer.
//
// A second section measures SFC sharding on the selective-polygon
// workload (small ad-hoc viewports, one query in flight at a time — the
// interactive latency regime): qps at 1..max_shards spatial shards with a
// fixed thread count, HR cache warm, so the scatter-gather fan-out across
// surviving shards is the only variable. Speedup is reported relative to
// the single-shard path. NOTE: shard fan-out parallelism needs cores; on
// a single-core host the expected speedup is ~1x.
//
// A third section measures the shard-server message seam: the same
// selective-polygon workload with every shard probe crossing the
// serialized wire format (LoopbackTransport), cold per-shard caches vs
// warm (reference requests, no cell payloads). The loopback-vs-in-process
// ratio is the serialization overhead a real RPC deployment starts from;
// the bytes-per-query column is what the per-shard HR cache saves on the
// wire.
//
// A fourth section measures the socket transport: the same workload with
// every shard probe crossing localhost TCP (in-process listeners on
// ephemeral ports — real kernel sockets, real connection management) vs
// the loopback seam. The qps gap is the per-message cost the optimizer
// charges as transport_overhead.
//
// A fifth section measures the v2 envelope itself: the same workload
// submitted through the frozen v1 Request shim vs the native
// Query/ExecOptions path (shim conversion overhead — should be noise),
// plus the serialized size of v2 wire messages (the envelope's bound
// fields and typed status codes cost a handful of bytes per message).
//
// A seventh section (RunMux) is the multiplexing argument: a CLOSED LOOP
// of D concurrent clients over a one-shard socket deployment, so all D
// requests contend for ONE connection. The "blocking" arm caps the
// connection at one in-flight request (max_inflight_per_connection = 1 —
// the retired Roundtrip-per-message transport, faithfully re-created on
// the same engine); the "multiplexed" arm pipelines all D. qps and p99
// vs depth is the case for the async seam: >= 1x at depth 1 (the tag
// adds nothing when there is nothing to overlap) and growing with depth.
//
// A startup section (RunStartup) prices the snapshot interchange
// (docs/snapshot-format.md): per-shard process start rebuilding the
// dataset vs loading an epoch-stamped slice file, and post-failover
// replica latency with a cold cell cache vs rewarm_on_failover.
//
// A sixth section measures the telemetry layer: the repeated-epsilon
// workload warm, tracing + slow-query accounting ON vs OFF. Tracing is
// observe-only by contract (payloads byte-identical either way); this
// section prices the observation itself — span timestamping, the
// per-stage histogram records, the id minting. The acceptance bar is
// tracing-on >= 0.95x tracing-off warm qps.
//
// Flags: --points=N --regions=N --rounds=N --max_threads=N
//        --max_shards=N --viewports=N --json_out=PATH

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "service/query_service.h"
#include "service/socket_cluster.h"
#include "snapshot/snapshot.h"

namespace dbsa {
namespace {

using service::QueryService;
using service::Request;
using service::ServiceOptions;

/// The repeated-epsilon workload: region aggregations across a few
/// distance bounds plus ad-hoc viewport counts (a dashboard's refresh).
std::vector<Request> MakeWorkload(const geom::Box& universe, size_t rounds) {
  std::vector<Request> reqs;
  const std::vector<double> epsilons = {4.0, 16.0, 64.0};
  std::vector<geom::Polygon> viewports;
  Rng rng(2021);
  for (int v = 0; v < 4; ++v) {
    const double w = universe.Width() * rng.Uniform(0.1, 0.3);
    const double x0 = rng.Uniform(universe.min.x, universe.max.x - w);
    const double y0 = rng.Uniform(universe.min.y, universe.max.y - w);
    geom::Polygon viewport(
        geom::Ring{{x0, y0}, {x0 + w, y0}, {x0 + w, y0 + w}, {x0, y0 + w}});
    viewport.Normalize();
    viewports.push_back(std::move(viewport));
  }
  for (size_t round = 0; round < rounds; ++round) {
    for (const double eps : epsilons) {
      reqs.push_back(Request::MakeAggregate(join::AggKind::kCount, core::Attr::kNone,
                                            eps, core::Mode::kPointIndex));
      reqs.push_back(Request::MakeAggregate(join::AggKind::kSum, core::Attr::kFare,
                                            eps, core::Mode::kPointIndex));
      for (const geom::Polygon& viewport : viewports) {
        reqs.push_back(Request::MakeCount(viewport, eps));
      }
    }
  }
  return reqs;
}

struct PassResult {
  double seconds = 0.0;
  double qps = 0.0;
  double hit_ratio = 0.0;
};

PassResult RunPass(QueryService& service, const std::vector<Request>& workload) {
  const service::ApproxCache::Stats before = service.cache_stats();
  Timer timer;
  for (const Request& req : workload) service.Submit(req);
  service.Drain();
  PassResult result;
  result.seconds = timer.Seconds();
  result.qps = static_cast<double>(workload.size()) / result.seconds;
  const service::ApproxCache::Stats after = service.cache_stats();
  const size_t hits = after.hits - before.hits;
  const size_t misses = after.misses - before.misses;
  result.hit_ratio =
      hits + misses ? static_cast<double>(hits) / static_cast<double>(hits + misses)
                    : 0.0;
  return result;
}

void Run(size_t n_points, size_t n_regions, size_t rounds, size_t max_threads) {
  PrintBanner("Service throughput: queries/sec vs threads, cold vs warm cache");
  bench::PrintScale(HumanCount(static_cast<double>(n_points)) + " points, " +
                    std::to_string(n_regions) + " region polygons, " +
                    std::to_string(rounds) + " rounds");

  data::PointSet points = bench::BenchPoints(n_points);
  data::RegionSet regions =
      data::GenerateRegions(data::CensusConfig(bench::BenchUniverse(), n_regions));

  Timer snap_timer;
  const std::shared_ptr<const core::EngineState> snapshot =
      core::BuildEngineState(std::move(points), std::move(regions));
  PrintNote("one-off snapshot build (grid + point index): " +
            TablePrinter::Num(snap_timer.Millis(), 4) + " ms");

  const std::vector<Request> workload =
      MakeWorkload(snapshot->grid.universe(), rounds);
  PrintNote(std::to_string(workload.size()) + " queries per pass");
  if (workload.empty()) {
    PrintNote("empty workload (rounds=0); nothing to measure");
    return;
  }

  TablePrinter table({"threads", "cold qps", "warm qps", "warm/cold", "hit ratio",
                      "cache"});
  for (size_t threads = 1; threads <= max_threads; threads *= 2) {
    ServiceOptions options;
    options.num_threads = threads;
    options.cache_budget_bytes = size_t{256} << 20;
    QueryService service(snapshot, options);  // Fresh (cold) cache.

    const PassResult cold = RunPass(service, workload);
    const PassResult warm = RunPass(service, workload);
    const service::ApproxCache::Stats stats = service.cache_stats();

    table.AddRow({std::to_string(threads), TablePrinter::Num(cold.qps, 5),
                  TablePrinter::Num(warm.qps, 5),
                  TablePrinter::Num(warm.qps / cold.qps, 4),
                  TablePrinter::Num(warm.hit_ratio, 4), HumanBytes(stats.bytes_used)});

    bench::JsonLine("service_throughput")
        .Add("threads", threads)
        .Add("queries", workload.size())
        .Add("cold_qps", cold.qps)
        .Add("warm_qps", warm.qps)
        .Add("warm_over_cold", warm.qps / cold.qps)
        .Add("warm_hit_ratio", warm.hit_ratio)
        .Add("cache_bytes", stats.bytes_used)
        .Add("cache_entries", stats.entries)
        .Print();
  }
  table.Print();
  PrintNote("warm/cold > 1 is the approximation cache amortizing HR builds;");
  PrintNote("qps scaling with threads is the shared-snapshot concurrency.");
}

/// Selective ad-hoc viewports: each covers a few percent of the universe,
/// so its approximation cells intersect only a handful of Hilbert shards.
std::vector<geom::Polygon> MakeViewports(const geom::Box& universe, size_t count) {
  std::vector<geom::Polygon> viewports;
  Rng rng(1109);
  viewports.reserve(count);
  for (size_t v = 0; v < count; ++v) {
    // 15-30% of the side = 2-9% of the area: selective, yet wide enough
    // that the approximation cells scatter across several Hilbert shards.
    const double w = universe.Width() * rng.Uniform(0.15, 0.30);
    const double x0 = rng.Uniform(universe.min.x, universe.max.x - w);
    const double y0 = rng.Uniform(universe.min.y, universe.max.y - w);
    geom::Polygon viewport(
        geom::Ring{{x0, y0}, {x0 + w, y0}, {x0 + w, y0 + w}, {x0, y0 + w}});
    viewport.Normalize();
    viewports.push_back(std::move(viewport));
  }
  return viewports;
}

void RunSharding(size_t n_points, size_t n_regions, size_t threads,
                 size_t max_shards, size_t num_viewports) {
  PrintBanner("SFC sharding: selective-polygon qps vs shard count");
  bench::PrintScale(HumanCount(static_cast<double>(n_points)) + " points, " +
                    std::to_string(num_viewports) + " viewports, " +
                    std::to_string(threads) + " threads");

  data::PointSet points = bench::BenchPoints(n_points);
  data::RegionSet regions =
      data::GenerateRegions(data::CensusConfig(bench::BenchUniverse(), n_regions));
  const std::shared_ptr<const core::EngineState> snapshot =
      core::BuildEngineState(std::move(points), std::move(regions));

  const std::vector<geom::Polygon> viewports =
      MakeViewports(snapshot->grid.universe(), num_viewports);
  const double eps = 4.0;

  // Built once for the stats column — the HRs are identical across shard
  // counts (and across the timed passes, which serve them from the cache).
  std::vector<raster::HierarchicalRaster> viewport_hrs;
  viewport_hrs.reserve(viewports.size());
  for (const geom::Polygon& v : viewports) {
    viewport_hrs.push_back(
        raster::HierarchicalRaster::BuildEpsilon(v, snapshot->grid, eps));
  }

  TablePrinter table({"shards", "qps", "speedup", "avg surviving"});
  double base_qps = 0.0;
  for (size_t shards = 1; shards <= max_shards; shards *= 2) {
    ServiceOptions options;
    options.num_threads = threads;
    options.cache_budget_bytes = size_t{256} << 20;
    options.num_shards = shards;
    QueryService service(snapshot, options);

    // Warm the HR cache so both paths measure probes, not rasterization.
    for (const geom::Polygon& v : viewports) {
      service.CountInPolygon(v, eps).get();
    }

    // One query in flight at a time: per-query latency is the metric; the
    // shard fan-out across the pool is the only intra-query parallelism.
    Timer timer;
    for (const geom::Polygon& v : viewports) {
      service.CountInPolygon(v, eps).get();
    }
    const double seconds = timer.Seconds();
    const double qps = static_cast<double>(viewports.size()) / seconds;
    if (shards == 1) base_qps = qps;

    double avg_surviving = static_cast<double>(shards);
    if (service.sharded() != nullptr) {
      size_t total = 0;
      for (const raster::HierarchicalRaster& hr : viewport_hrs) {
        total += service.sharded()->SurvivingShards(hr).size();
      }
      avg_surviving =
          static_cast<double>(total) / static_cast<double>(viewports.size());
    }

    table.AddRow({std::to_string(shards), TablePrinter::Num(qps, 5),
                  TablePrinter::Num(qps / base_qps, 4),
                  TablePrinter::Num(avg_surviving, 3)});
    bench::JsonLine("service_sharding")
        .Add("shards", shards)
        .Add("threads", threads)
        .Add("queries", viewports.size())
        .Add("qps", qps)
        .Add("speedup_vs_one_shard", qps / base_qps)
        .Add("avg_surviving_shards", avg_surviving)
        .Print();
  }
  table.Print();
  PrintNote("speedup = scatter-gather across surviving shards (needs cores);");
  PrintNote("avg surviving << shards is the Hilbert-locality pruning at work.");
}

/// The message seam: the selective-viewport workload with every shard
/// probe serialized through the loopback transport — in-process sharding
/// vs cold seam (cells shipped inline) vs warm seam (per-shard caches
/// answer reference requests).
void RunTransport(size_t n_points, size_t n_regions, size_t threads,
                  size_t max_shards, size_t num_viewports) {
  PrintBanner("Shard-server seam: loopback transport vs in-process scatter");
  bench::PrintScale(HumanCount(static_cast<double>(n_points)) + " points, " +
                    std::to_string(num_viewports) + " viewports, " +
                    std::to_string(threads) + " threads");

  data::PointSet points = bench::BenchPoints(n_points);
  data::RegionSet regions =
      data::GenerateRegions(data::CensusConfig(bench::BenchUniverse(), n_regions));
  const std::shared_ptr<const core::EngineState> snapshot =
      core::BuildEngineState(std::move(points), std::move(regions));
  const std::vector<geom::Polygon> viewports =
      MakeViewports(snapshot->grid.universe(), num_viewports);
  const double eps = 4.0;

  TablePrinter table({"shards", "inproc qps", "seam cold qps", "seam warm qps",
                      "warm/inproc", "req B/query cold", "req B/query warm"});
  for (size_t shards = 1; shards <= max_shards; shards *= 2) {
    ServiceOptions in_process;
    in_process.num_threads = threads;
    in_process.cache_budget_bytes = size_t{256} << 20;
    in_process.num_shards = shards;
    ServiceOptions seam = in_process;
    seam.use_transport = true;

    QueryService inproc_service(snapshot, in_process);
    QueryService seam_service(snapshot, seam);

    // Warm the central HR caches first so rasterization is off the clock
    // everywhere; the seam service's FIRST timed pass then measures
    // inline cell shipping (cold per-shard caches), the second pass
    // reference requests (warm per-shard caches).
    const auto time_pass = [&](QueryService& service) {
      Timer timer;
      for (const geom::Polygon& v : viewports) {
        service.CountInPolygon(v, eps).get();
      }
      return static_cast<double>(viewports.size()) / timer.Seconds();
    };
    const double inproc_warmup = time_pass(inproc_service);
    (void)inproc_warmup;  // Central cache warm; discard.
    const double inproc_qps = time_pass(inproc_service);

    // Central cache warm-up for the seam service WITHOUT touching the
    // per-shard caches is impossible through the public API (every query
    // populates them); instead measure pass 1 (cold: inline slices) and
    // pass 2 (warm: references) and report both.
    const service::LoopbackTransport::Stats s0 = seam_service.transport_stats();
    const double seam_cold_qps = time_pass(seam_service);
    const service::LoopbackTransport::Stats s1 = seam_service.transport_stats();
    const double seam_warm_qps = time_pass(seam_service);
    const service::LoopbackTransport::Stats s2 = seam_service.transport_stats();

    const double nq = static_cast<double>(viewports.size());
    const double cold_bytes =
        static_cast<double>(s1.request_bytes - s0.request_bytes) / nq;
    const double warm_bytes =
        static_cast<double>(s2.request_bytes - s1.request_bytes) / nq;

    table.AddRow({std::to_string(shards), TablePrinter::Num(inproc_qps, 5),
                  TablePrinter::Num(seam_cold_qps, 5),
                  TablePrinter::Num(seam_warm_qps, 5),
                  TablePrinter::Num(seam_warm_qps / inproc_qps, 4),
                  TablePrinter::Num(cold_bytes, 5), TablePrinter::Num(warm_bytes, 5)});
    bench::JsonLine("service_transport")
        .Add("shards", shards)
        .Add("threads", threads)
        .Add("queries", viewports.size())
        .Add("inprocess_qps", inproc_qps)
        .Add("seam_cold_qps", seam_cold_qps)
        .Add("seam_warm_qps", seam_warm_qps)
        .Add("seam_warm_over_inprocess", seam_warm_qps / inproc_qps)
        .Add("request_bytes_per_query_cold", cold_bytes)
        .Add("request_bytes_per_query_warm", warm_bytes)
        .Add("messages", s2.messages)
        .Print();
  }
  table.Print();
  PrintNote("warm/inproc ~ 1 is the seam being (near) free once per-shard");
  PrintNote("caches serve reference requests; req bytes warm << cold is the");
  PrintNote("per-shard HR cache keeping cell payloads off the wire.");
}

/// Real RPC: the same selective-viewport workload with every shard probe
/// crossing localhost TCP sockets — in-process ShardListeners on
/// ephemeral ports, so the kernel loopback interface, the framing and
/// the connection management are all real — vs the loopback seam. The
/// socket/loopback qps ratio is the honest per-message cost the
/// optimizer charges as QueryProfile::transport_overhead
/// (SocketTransport::kDefaultCostPerMessage vs
/// LoopbackTransport::kCostPerMessage).
void RunSocket(size_t n_points, size_t n_regions, size_t threads,
               size_t max_shards, size_t num_viewports) {
  PrintBanner("Socket transport: localhost TCP vs loopback seam");
  bench::PrintScale(HumanCount(static_cast<double>(n_points)) + " points, " +
                    std::to_string(num_viewports) + " viewports, " +
                    std::to_string(threads) + " threads");

  data::PointSet points = bench::BenchPoints(n_points);
  data::RegionSet regions =
      data::GenerateRegions(data::CensusConfig(bench::BenchUniverse(), n_regions));
  const std::shared_ptr<const core::EngineState> snapshot =
      core::BuildEngineState(std::move(points), std::move(regions));
  const std::vector<geom::Polygon> viewports =
      MakeViewports(snapshot->grid.universe(), num_viewports);
  const double eps = 4.0;

  TablePrinter table({"shards", "loopback warm qps", "socket warm qps",
                      "socket/loopback", "dials", "msg B/query"});
  for (size_t shards = 1; shards <= max_shards; shards *= 2) {
    ServiceOptions loopback;
    loopback.num_threads = threads;
    loopback.cache_budget_bytes = size_t{256} << 20;
    loopback.num_shards = shards;
    loopback.use_transport = true;
    QueryService loopback_service(snapshot, loopback);

    // The cluster: one listener per shard, in-process but over real TCP.
    const service::InProcessShardCluster cluster =
        service::MakeInProcessShardCluster(snapshot, shards);
    ServiceOptions socket = loopback;
    socket.num_shards = 0;  // From the placement.
    socket.transport_kind = service::TransportKind::kSocket;
    socket.placement = cluster.placement;
    QueryService socket_service(snapshot, socket);

    const auto time_pass = [&](QueryService& service) {
      Timer timer;
      for (const geom::Polygon& v : viewports) {
        service.CountInPolygon(v, eps).get();
      }
      return static_cast<double>(viewports.size()) / timer.Seconds();
    };
    (void)time_pass(loopback_service);  // Warm (central + per-shard).
    const double loopback_qps = time_pass(loopback_service);
    (void)time_pass(socket_service);  // Warm + connections established.
    const service::SocketTransport::Stats s1 = socket_service.socket_transport()->stats();
    const double socket_qps = time_pass(socket_service);
    const service::SocketTransport::Stats s2 = socket_service.socket_transport()->stats();

    const double nq = static_cast<double>(viewports.size());
    const double wire_bytes =
        static_cast<double>((s2.request_bytes + s2.response_bytes) -
                            (s1.request_bytes + s1.response_bytes)) / nq;
    table.AddRow({std::to_string(shards), TablePrinter::Num(loopback_qps, 5),
                  TablePrinter::Num(socket_qps, 5),
                  TablePrinter::Num(socket_qps / loopback_qps, 4),
                  std::to_string(s2.dials), TablePrinter::Num(wire_bytes, 5)});
    bench::JsonLine("service_socket_transport")
        .Add("shards", shards)
        .Add("threads", threads)
        .Add("queries", viewports.size())
        .Add("loopback_warm_qps", loopback_qps)
        .Add("socket_warm_qps", socket_qps)
        .Add("socket_over_loopback", socket_qps / loopback_qps)
        .Add("dials", s2.dials)
        .Add("wire_bytes_per_query", wire_bytes)
        .Add("messages", s2.messages)
        .Print();
  }
  table.Print();
  PrintNote("socket/loopback < 1 is the real per-message cost (syscalls,");
  PrintNote("kernel TCP) that transport_overhead charges the planner; dials");
  PrintNote("staying ~ shards x threads shows connections persist and pool.");
}

/// The multiplexing section: closed-loop concurrency over ONE shard
/// connection, blocking-equivalent vs pipelined (see the file comment).
void RunMux(size_t n_points, size_t n_regions, size_t num_viewports) {
  PrintBanner("Multiplexed transport: closed loop, blocking vs pipelined");
  bench::PrintScale(HumanCount(static_cast<double>(n_points)) + " points, " +
                    std::to_string(num_viewports) + " viewports, 1 shard");

  data::PointSet points = bench::BenchPoints(n_points);
  data::RegionSet regions =
      data::GenerateRegions(data::CensusConfig(bench::BenchUniverse(), n_regions));
  const std::shared_ptr<const core::EngineState> snapshot =
      core::BuildEngineState(std::move(points), std::move(regions));
  const std::vector<geom::Polygon> viewports =
      MakeViewports(snapshot->grid.universe(), num_viewports);
  const double eps = 4.0;
  constexpr size_t kPerClient = 16;

  // One shard: every query's probe rides the same connection, so the
  // in-flight cap is the only variable between the two arms.
  const service::InProcessShardCluster cluster =
      service::MakeInProcessShardCluster(snapshot, 1);

  // One closed-loop pass: `depth` clients, each running kPerClient
  // queries back to back. Returns qps; per-query latencies land in `lat`.
  const auto closed_loop = [&](size_t depth, size_t inflight_cap,
                               bench::LatencyRecorder* lat) {
    ServiceOptions options;
    options.num_threads = depth;  // The pool must never be the bottleneck.
    options.cache_budget_bytes = size_t{256} << 20;
    options.use_transport = true;
    options.num_shards = 0;  // From the placement.
    options.transport_kind = service::TransportKind::kSocket;
    options.placement = cluster.placement;
    options.socket_options.max_inflight_per_connection = inflight_cap;
    QueryService service(snapshot, options);

    const auto pass = [&](bool record) {
      std::vector<std::vector<double>> per_client(depth);
      Timer timer;
      std::vector<std::thread> clients;
      for (size_t c = 0; c < depth; ++c) {
        clients.emplace_back([&, c]() {
          per_client[c].reserve(kPerClient);
          for (size_t i = 0; i < kPerClient; ++i) {
            Timer one;
            service.CountInPolygon(viewports[(c * kPerClient + i) % viewports.size()],
                                   eps)
                .get();
            per_client[c].push_back(one.Millis());
          }
        });
      }
      for (std::thread& t : clients) t.join();
      const double qps =
          static_cast<double>(depth * kPerClient) / timer.Seconds();
      if (record && lat != nullptr) {
        for (const std::vector<double>& ms : per_client) {
          for (const double m : ms) lat->Record(m);
        }
      }
      return qps;
    };
    (void)pass(false);  // Warm caches and the connection off the clock.
    return pass(true);
  };

  TablePrinter table({"depth", "blocking qps", "mux qps", "mux/blocking",
                      "blocking p99 (ms)", "mux p99 (ms)"});
  for (const size_t depth : {size_t{1}, size_t{8}, size_t{32}}) {
    bench::LatencyRecorder blocking_lat, mux_lat;
    const double blocking_qps = closed_loop(depth, 1, &blocking_lat);
    const double mux_qps = closed_loop(depth, 0, &mux_lat);
    table.AddRow({std::to_string(depth), TablePrinter::Num(blocking_qps, 5),
                  TablePrinter::Num(mux_qps, 5),
                  TablePrinter::Num(mux_qps / blocking_qps, 4),
                  TablePrinter::Num(blocking_lat.Quantile(99), 4),
                  TablePrinter::Num(mux_lat.Quantile(99), 4)});
    bench::JsonLine("service_mux_transport")
        .Add("inflight_depth", depth)
        .Add("queries", depth * kPerClient)
        .Add("blocking_qps", blocking_qps)
        .Add("mux_qps", mux_qps)
        .Add("mux_over_blocking", mux_qps / blocking_qps)
        .Add("blocking_p50_ms", blocking_lat.Quantile(50))
        .Add("blocking_p99_ms", blocking_lat.Quantile(99))
        .Add("mux_p50_ms", mux_lat.Quantile(50))
        .Add("mux_p99_ms", mux_lat.Quantile(99))
        .Print();
  }
  table.Print();
  PrintNote("mux/blocking ~ 1 at depth 1 (a tag on an idle connection is");
  PrintNote("free) and > 1 at depth >= 8: pipelining hides the per-message");
  PrintNote("wire latency the blocking arm pays serially per request.");
}

/// The envelope-overhead section: v1 shim vs native v2 submissions of the
/// same repeated-epsilon workload (warm cache, so conversion and
/// dispatch — not HR builds — dominate), plus v2 wire bytes per message.
void RunEnvelope(size_t n_points, size_t n_regions, size_t rounds,
                 size_t threads) {
  PrintBanner("v2 envelope: v1-shim vs native submit, wire message sizes");
  bench::PrintScale(HumanCount(static_cast<double>(n_points)) + " points, " +
                    std::to_string(n_regions) + " region polygons, " +
                    std::to_string(threads) + " threads");

  data::PointSet points = bench::BenchPoints(n_points);
  data::RegionSet regions =
      data::GenerateRegions(data::CensusConfig(bench::BenchUniverse(), n_regions));
  const std::shared_ptr<const core::EngineState> snapshot =
      core::BuildEngineState(std::move(points), std::move(regions));

  const std::vector<Request> v1_workload =
      MakeWorkload(snapshot->grid.universe(), rounds);
  std::vector<std::pair<service::Query, service::ExecOptions>> v2_workload;
  v2_workload.reserve(v1_workload.size());
  for (const Request& req : v1_workload) {
    v2_workload.emplace_back(service::QueryFromV1(req),
                             service::OptionsFromV1(req));
  }

  ServiceOptions options;
  options.num_threads = threads;
  options.cache_budget_bytes = size_t{256} << 20;
  QueryService service(snapshot, options);

  const auto time_v1 = [&]() {
    Timer timer;
    for (const Request& req : v1_workload) service.Submit(req);
    service.Drain();
    return static_cast<double>(v1_workload.size()) / timer.Seconds();
  };
  const auto time_v2 = [&]() {
    Timer timer;
    for (const auto& [query, exec] : v2_workload) service.Submit(query, exec);
    service.Drain();
    return static_cast<double>(v2_workload.size()) / timer.Seconds();
  };

  (void)time_v2();  // Warm the HR cache off the clock.
  const double v1_qps = time_v1();
  const double v2_qps = time_v2();

  // Wire-size probe: one shard's scatter messages for a mid-size region
  // at two bound regimes, inline vs reference (the envelope's contract
  // fields ride every request; the response carries the compensated
  // aggregate pair).
  const geom::Polygon& probe_poly = snapshot->regions->polys.front();
  const raster::HierarchicalRaster hr =
      raster::HierarchicalRaster::BuildEpsilon(probe_poly, snapshot->grid, 4.0);
  service::ScatterRequest inline_req;
  inline_req.kind = service::ScatterRequest::Kind::kAggregateCells;
  inline_req.bound_kind = query::BoundKind::kAbsoluteDistance;
  inline_req.bound_epsilon = 4.0;
  inline_req.level = snapshot->grid.LevelForEpsilon(4.0);
  inline_req.has_object = true;
  inline_req.object = service::ObjectKey(0);
  inline_req.has_cells = true;
  inline_req.cells = hr.cells();
  service::ScatterRequest reference_req = inline_req;
  reference_req.has_cells = false;
  reference_req.cells.clear();
  const size_t inline_bytes = inline_req.Encode().size();
  const size_t reference_bytes = reference_req.Encode().size();

  TablePrinter table({"v1 shim qps", "native v2 qps", "v2/v1",
                      "inline req B", "reference req B"});
  table.AddRow({TablePrinter::Num(v1_qps, 5), TablePrinter::Num(v2_qps, 5),
                TablePrinter::Num(v2_qps / v1_qps, 4),
                std::to_string(inline_bytes), std::to_string(reference_bytes)});
  table.Print();
  PrintNote("v2/v1 ~ 1: the shim is pure conversion; the envelope adds no");
  PrintNote("dispatch cost. Reference requests stay tens of bytes under v2.");

  bench::JsonLine("service_envelope")
      .Add("threads", threads)
      .Add("queries", v1_workload.size())
      .Add("v1_shim_qps", v1_qps)
      .Add("v2_native_qps", v2_qps)
      .Add("v2_over_v1", v2_qps / v1_qps)
      .Add("wire_inline_request_bytes", inline_bytes)
      .Add("wire_reference_request_bytes", reference_bytes)
      .Add("wire_cells", hr.cells().size())
      .Print();
}

/// The telemetry-overhead section: the repeated-epsilon workload, warm,
/// with per-query tracing + stage histograms + slow-query accounting ON
/// vs OFF. Latency percentiles come from bench::LatencyRecorder — the
/// same telemetry::HistogramData the service itself scrapes.
void RunTelemetry(size_t n_points, size_t n_regions, size_t rounds,
                  size_t threads) {
  PrintBanner("Telemetry overhead: tracing on vs off, warm cache");
  bench::PrintScale(HumanCount(static_cast<double>(n_points)) + " points, " +
                    std::to_string(n_regions) + " region polygons, " +
                    std::to_string(threads) + " threads");

  data::PointSet points = bench::BenchPoints(n_points);
  data::RegionSet regions =
      data::GenerateRegions(data::CensusConfig(bench::BenchUniverse(), n_regions));
  const std::shared_ptr<const core::EngineState> snapshot =
      core::BuildEngineState(std::move(points), std::move(regions));
  const std::vector<Request> workload =
      MakeWorkload(snapshot->grid.universe(), rounds);
  if (workload.empty()) {
    PrintNote("empty workload (rounds=0); nothing to measure");
    return;
  }

  const auto warm_qps = [&](bool tracing, bench::LatencyRecorder* lat) {
    ServiceOptions options;
    options.num_threads = threads;
    options.cache_budget_bytes = size_t{256} << 20;
    options.enable_tracing = tracing;
    if (tracing) {
      // The full observation cost: every query also crosses the
      // slow-query threshold check (but none trip it).
      options.slow_query_ms = 1e9;
    }
    QueryService service(snapshot, options);
    const auto pass = [&](bench::LatencyRecorder* record) {
      Timer timer;
      for (const Request& req : workload) {
        Timer one;
        service.Submit(req);
        if (record != nullptr) {
          service.Drain();  // Per-query latency: one in flight at a time.
          record->Record(one.Millis());
        }
      }
      service.Drain();
      return static_cast<double>(workload.size()) / timer.Seconds();
    };
    (void)pass(nullptr);  // Warm the HR cache off the clock.
    const double qps = pass(nullptr);
    if (lat != nullptr) (void)pass(lat);  // Separate percentile pass.
    return qps;
  };

  bench::LatencyRecorder traced_lat;
  const double off_qps = warm_qps(false, nullptr);
  const double on_qps = warm_qps(true, &traced_lat);

  TablePrinter table({"tracing off qps", "tracing on qps", "on/off",
                      "traced p50 (ms)", "traced p99 (ms)"});
  table.AddRow({TablePrinter::Num(off_qps, 5), TablePrinter::Num(on_qps, 5),
                TablePrinter::Num(on_qps / off_qps, 4),
                TablePrinter::Num(traced_lat.Quantile(50), 4),
                TablePrinter::Num(traced_lat.Quantile(99), 4)});
  table.Print();
  PrintNote("on/off >= 0.95 is the bar: spans are two steady_clock reads and");
  PrintNote("a relaxed striped-cell add each — observation must stay in the");
  PrintNote("noise. Payloads are byte-identical either way (tested).");

  bench::JsonLine("service_telemetry_overhead")
      .Add("threads", threads)
      .Add("queries", workload.size())
      .Add("tracing_off_warm_qps", off_qps)
      .Add("tracing_on_warm_qps", on_qps)
      .Add("on_over_off", on_qps / off_qps)
      .Add("traced_p50_ms", traced_lat.Quantile(50))
      .Add("traced_p99_ms", traced_lat.Quantile(99))
      .Print();
}

/// The snapshot-startup section: what epoch-stamped snapshot files
/// (src/snapshot/, docs/snapshot-format.md) buy at the two moments that
/// matter operationally. (a) Process start: a shard server without a
/// snapshot rebuilds the WHOLE dataset to agree on the shard cuts and
/// then slices its own shard (ShardingOptions::only_slice); with one it
/// parses + assembles its slice file. (b) Failover: a freshly promoted
/// replica has the right bytes but a cold cell cache — reference
/// requests miss and re-ship inline payloads until it refills;
/// ServiceOptions::rewarm_on_failover re-warms it off the query path,
/// and this section prices the difference in post-failover p99 and
/// wire bytes.
void RunStartup(size_t n_points, size_t n_regions, size_t max_shards) {
  PrintBanner("Snapshot startup: load vs rebuild, post-failover rewarm");
  const size_t shards = max_shards < 2 ? 2 : (max_shards > 4 ? 4 : max_shards);
  bench::PrintScale(HumanCount(static_cast<double>(n_points)) + " points, " +
                    std::to_string(n_regions) + " region polygons, " +
                    std::to_string(shards) + " shards");

  data::PointSet points = bench::BenchPoints(n_points);
  data::RegionSet regions =
      data::GenerateRegions(data::CensusConfig(bench::BenchUniverse(), n_regions));
  const std::shared_ptr<const core::EngineState> snapshot =
      core::BuildEngineState(std::move(points), std::move(regions));

  // Cut the snapshot set once, off the clock (deploy-time cost, paid
  // once per dataset generation, not per process).
  core::ShardingOptions full_build;
  full_build.num_shards = shards;
  const std::shared_ptr<const core::ShardedState> sharded =
      core::ShardedState::Build(snapshot, full_build);
  constexpr uint64_t kEpoch = 7;
  std::vector<std::string> slice_bytes;
  slice_bytes.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    slice_bytes.push_back(snapshot::EncodeShardSnapshot(*sharded, s, kEpoch));
  }

  // Arm 1 — rebuild: per shard-server process, regenerate the dataset
  // (the processes must agree on the cuts) and materialize one slice.
  Timer rebuild_timer;
  for (size_t s = 0; s < shards; ++s) {
    data::PointSet p = bench::BenchPoints(n_points);
    data::RegionSet r = data::GenerateRegions(
        data::CensusConfig(bench::BenchUniverse(), n_regions));
    const std::shared_ptr<const core::EngineState> base =
        core::BuildEngineState(std::move(p), std::move(r));
    core::ShardingOptions one;
    one.num_shards = shards;
    one.only_slice = static_cast<int>(s);
    (void)core::ShardedState::Build(base, one);
  }
  const double rebuild_ms =
      rebuild_timer.Millis() / static_cast<double>(shards);

  // Arm 2 — load: parse the slice file image (the copy stands in for
  // the disk read) and assemble the slice + id map, as
  // shard_server_main --snapshot does.
  Timer load_timer;
  for (size_t s = 0; s < shards; ++s) {
    StatusOr<snapshot::SnapshotReader> reader =
        snapshot::SnapshotReader::Parse(std::string(slice_bytes[s]));
    (void)reader->AssembleEngineState().value();
    (void)reader->DecodeShardIds().value();
  }
  const double load_ms = load_timer.Millis() / static_cast<double>(shards);

  TablePrinter startup_table(
      {"per-shard rebuild (ms)", "snapshot load (ms)", "rebuild/load"});
  startup_table.AddRow({TablePrinter::Num(rebuild_ms, 5),
                        TablePrinter::Num(load_ms, 5),
                        TablePrinter::Num(rebuild_ms / load_ms, 4)});
  startup_table.Print();
  PrintNote("rebuild/load is the startup speedup of --snapshot; it grows");
  PrintNote("with dataset size (load is O(slice), rebuild O(dataset)).");
  bench::JsonLine("service_snapshot_startup")
      .Add("shards", shards)
      .Add("points", n_points)
      .Add("rebuild_ms_per_shard", rebuild_ms)
      .Add("snapshot_load_ms_per_shard", load_ms)
      .Add("rebuild_over_load", rebuild_ms / load_ms)
      .Print();

  // (b) Post-failover: all primaries die after a warm pass; the replica
  // arm difference is rewarm_on_failover only.
  const double eps = 4.0;
  const size_t kQueries = 16;
  const auto failover_arm = [&](bool rewarm, bench::LatencyRecorder* lat,
                                double* bytes_per_query) {
    service::InProcessShardClusterOptions cluster_options;
    cluster_options.with_replicas = true;
    // Replicas as separate processes: own server, own (cold) cache.
    cluster_options.replica_own_server = true;
    service::InProcessShardCluster cluster =
        service::MakeInProcessShardCluster(snapshot, shards, cluster_options);
    ServiceOptions options;
    options.num_threads = 4;
    options.cache_budget_bytes = size_t{256} << 20;
    options.use_transport = true;
    options.num_shards = 0;  // From the placement.
    options.transport_kind = service::TransportKind::kSocket;
    options.placement = cluster.placement;
    options.rewarm_on_failover = rewarm;
    QueryService service(snapshot, options);

    const auto one_query = [&]() {
      Timer one;
      service.Submit(Request::MakeAggregate(join::AggKind::kCount,
                                            core::Attr::kNone, eps,
                                            core::Mode::kPointIndex));
      service.Drain();
      return one.Millis();
    };

    service.WarmCache(eps);
    for (size_t i = 0; i < 4; ++i) (void)one_query();  // Primaries warm.

    for (auto& primary : cluster.primaries) primary->Stop();
    // Trigger the failover (and the async rewarm) with an AD-HOC count
    // over the whole universe: it scatters to (and fails over) EVERY
    // shard but ships only its own fingerprint slices, so the REGION
    // objects the measured aggregates need stay cold unless
    // rewarm_on_failover refills them.
    const geom::Box u = snapshot->grid.universe();
    geom::Polygon trigger(geom::Ring{{u.min.x, u.min.y},
                                     {u.max.x, u.min.y},
                                     {u.max.x, u.max.y},
                                     {u.min.x, u.max.y}});
    trigger.Normalize();
    service.CountInPolygon(trigger, eps).get();
    // Give the rewarm arm time to finish off the query path; the cold
    // arm sleeps the same amount so the clock fairness is exact.
    std::this_thread::sleep_for(std::chrono::milliseconds(300));

    const service::SocketTransport::Stats s1 =
        service.socket_transport()->stats();
    for (size_t i = 0; i < kQueries; ++i) lat->Record(one_query());
    const service::SocketTransport::Stats s2 =
        service.socket_transport()->stats();
    *bytes_per_query =
        static_cast<double>(s2.request_bytes - s1.request_bytes) /
        static_cast<double>(kQueries);
  };

  bench::LatencyRecorder cold_lat, rewarmed_lat;
  double cold_bytes = 0.0, rewarmed_bytes = 0.0;
  failover_arm(false, &cold_lat, &cold_bytes);
  failover_arm(true, &rewarmed_lat, &rewarmed_bytes);

  TablePrinter failover_table({"replica", "p50 (ms)", "p99 (ms)",
                               "req B/query"});
  failover_table.AddRow({"cold", TablePrinter::Num(cold_lat.Quantile(50), 4),
                         TablePrinter::Num(cold_lat.Quantile(99), 4),
                         TablePrinter::Num(cold_bytes, 5)});
  failover_table.AddRow({"rewarmed",
                         TablePrinter::Num(rewarmed_lat.Quantile(50), 4),
                         TablePrinter::Num(rewarmed_lat.Quantile(99), 4),
                         TablePrinter::Num(rewarmed_bytes, 5)});
  failover_table.Print();
  PrintNote("cold replicas answer kNotCached and force inline re-ships");
  PrintNote("(req B/query); rewarm_on_failover refills them off the query");
  PrintNote("path, so post-failover p99 returns to reference-request rates.");
  bench::JsonLine("service_failover_rewarm")
      .Add("shards", shards)
      .Add("queries", kQueries)
      .Add("cold_p50_ms", cold_lat.Quantile(50))
      .Add("cold_p99_ms", cold_lat.Quantile(99))
      .Add("cold_request_bytes_per_query", cold_bytes)
      .Add("rewarmed_p50_ms", rewarmed_lat.Quantile(50))
      .Add("rewarmed_p99_ms", rewarmed_lat.Quantile(99))
      .Add("rewarmed_request_bytes_per_query", rewarmed_bytes)
      .Print();
}

}  // namespace
}  // namespace dbsa

int main(int argc, char** argv) {
  const size_t n_points = dbsa::bench::FlagSize(argc, argv, "points", 100000);
  const size_t n_regions = dbsa::bench::FlagSize(argc, argv, "regions", 500);
  const size_t rounds = dbsa::bench::FlagSize(argc, argv, "rounds", 3);
  const size_t max_threads = dbsa::bench::FlagSize(argc, argv, "max_threads", 8);
  const size_t max_shards = dbsa::bench::FlagSize(argc, argv, "max_shards", 8);
  const size_t viewports = dbsa::bench::FlagSize(argc, argv, "viewports", 48);
  dbsa::bench::OpenJsonOut(dbsa::bench::FlagString(argc, argv, "json_out"));
  dbsa::Run(n_points, n_regions, rounds, max_threads);
  dbsa::RunSharding(n_points, n_regions, max_threads, max_shards, viewports);
  dbsa::RunTransport(n_points, n_regions, max_threads, max_shards, viewports);
  dbsa::RunSocket(n_points, n_regions, max_threads, max_shards, viewports);
  dbsa::RunMux(n_points, n_regions, viewports);
  dbsa::RunEnvelope(n_points, n_regions, rounds, max_threads);
  dbsa::RunTelemetry(n_points, n_regions, rounds, max_threads);
  dbsa::RunStartup(n_points, n_regions, max_shards);
  dbsa::bench::CloseJsonOut();
  return 0;
}
