// TAB-MEM — Section 5.1's in-text memory comparison: ACT trades memory
// for approximation accuracy. Paper numbers for Neighborhoods: ACT 143 MB
// (13.2M HR cells at a 4 m bound), SI 1.2 MB, R*-tree 27.9 KB.

#include <cstdio>

#include "bench_util.h"
#include "spatial/rstar_tree.h"

namespace dbsa {
namespace {

void Run() {
  PrintBanner("Section 5.1 memory footprint: ACT vs SI vs R*-tree");
  bench::PrintScale("Neighborhoods-like regions on a 16.4km universe, eps=4m "
                    "(paper: NYC, ACT 143MB / SI 1.2MB / R* 27.9KB)");

  const data::RegionSet regions = bench::BenchNeighborhoods();
  const raster::Grid grid({0, 0}, bench::BenchUniverse().Width());
  join::JoinInput in;
  in.polys = &regions.polys;
  in.region_of = &regions.region_of;
  in.num_regions = regions.num_regions;

  TablePrinter table({"index", "approximation", "cells", "bytes", "human"});

  {
    join::ActJoinOptions opts;
    opts.epsilon = 4.0;
    const join::ActJoinIndex act(in, grid, opts);
    table.AddRow({"ACT", "HR, eps=4m (distance-bounded)",
                  std::to_string(act.NumCells()), std::to_string(act.MemoryBytes()),
                  HumanBytes(act.MemoryBytes())});
  }
  {
    const join::SiIndex si(in, grid, /*cells_per_poly=*/64);
    table.AddRow({"SI", "HR, 64 cells/poly (not bounded)",
                  std::to_string(si.NumCells()), std::to_string(si.MemoryBytes()),
                  HumanBytes(si.MemoryBytes())});
  }
  {
    spatial::RStarTree tree;
    for (size_t j = 0; j < regions.polys.size(); ++j) {
      tree.Insert(regions.polys[j].bounds(), static_cast<uint32_t>(j));
    }
    table.AddRow({"R*-tree", "MBR", std::to_string(regions.polys.size()),
                  std::to_string(tree.MemoryBytes()), HumanBytes(tree.MemoryBytes())});
  }
  table.Print();
  PrintNote("");
  PrintNote("expected shape (paper Sec. 5.1): ACT is orders of magnitude larger than");
  PrintNote("SI, which is much larger than the R*-tree — precision costs memory, and");
  PrintNote("that memory is what eliminates the refinement step entirely.");
}

}  // namespace
}  // namespace dbsa

int main() {
  dbsa::Run();
  return 0;
}
