#!/usr/bin/env bash
# Negative tests for the custom static-analysis gates (ctest entry
# `lint_selftest`; same pattern as check_docs_links.sh's fixtures): each
# checker is pointed at a deliberately-bad input and MUST fail. A checker
# that cannot fail — a typo'd grep pattern, a dead static_assert — passes
# everything forever, which is strictly worse than having no checker.
#
# Checks that need tools the machine lacks (clang) self-skip; the CI
# static-analysis job runs them with --require so they cannot skip there.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0
err() {
  echo "lint_selftest: $*" >&2
  fail=1
}

# ---- 1. check_lint.sh must pass the real tree -------------------------
if ! scripts/check_lint.sh >/dev/null; then
  err "check_lint.sh fails on the real tree (should be clean)"
fi

# ---- 2. check_lint.sh must FAIL the bad fixture tree ------------------
# The fixture tree has one violation per rule (naked lock, raw
# std::mutex, stray reinterpret_cast); a pass means a grep went dead.
if scripts/check_lint.sh scripts/lint_fixtures/bad_tree >/dev/null 2>&1; then
  err "check_lint.sh PASSED the bad fixture tree — a lint rule is dead"
fi

# ---- 3. wire-layout gate: positive and negative legs ------------------
# check_wire_layout.sh runs its own negative probe (-DDBSA_WIRE_PROBE_BAD
# must not compile) and fails if the bad probe slips through.
if ! scripts/check_wire_layout.sh >/dev/null; then
  err "check_wire_layout.sh failed (layout drifted, or the bad probe compiled)"
fi

# ---- 4. thread-safety gate must FAIL the off-lock fixture -------------
# Clang-only: the fixture writes a DBSA_GUARDED_BY field with no lock
# held. Self-skips without clang (CI's static-analysis job has it).
if command -v "${CLANGXX:-clang++}" >/dev/null 2>&1; then
  if scripts/check_thread_safety.sh scripts/lint_fixtures/bad_off_lock_write.cc >/dev/null 2>&1; then
    err "check_thread_safety.sh PASSED the off-lock fixture — TSA gate is dead"
  fi
  if ! scripts/check_thread_safety.sh >/dev/null; then
    err "check_thread_safety.sh fails on the real tree (should be clean)"
  fi
else
  echo "lint_selftest: clang++ not installed — thread-safety legs skipped (CI runs them)"
fi

if [[ $fail -ne 0 ]]; then
  exit 1
fi
echo "lint_selftest: all checkers fail their bad fixtures (gates are live)"
