#!/usr/bin/env bash
# Negative tests for the custom static-analysis gates (ctest entry
# `lint_selftest`; same pattern as check_docs_links.sh's fixtures): each
# checker is pointed at a deliberately-bad input and MUST fail. A checker
# that cannot fail — a typo'd grep pattern, a dead static_assert — passes
# everything forever, which is strictly worse than having no checker.
#
# Checks that need tools the machine lacks (clang) self-skip; the CI
# static-analysis job runs them with --require so they cannot skip there.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0
err() {
  echo "lint_selftest: $*" >&2
  fail=1
}

# ---- 0. every fixture this selftest leans on must exist ---------------
# A deleted or renamed fixture silently turns its leg into "checker ran
# on nothing and passed" — the exact failure mode this selftest exists
# to catch. Listed explicitly so a rename here and in the legs below has
# to happen together.
FIXTURES=(
  scripts/lint_fixtures/bad_tree
  scripts/lint_fixtures/bad_determinism_iter
  scripts/lint_fixtures/bad_determinism_ptr_key
  scripts/lint_fixtures/bad_determinism_memcpy
  scripts/lint_fixtures/bad_determinism_builtin_memcpy
  scripts/lint_fixtures/bad_determinism_copy
  scripts/lint_fixtures/bad_off_lock_write.cc
  scripts/lint_fixtures/bad_snapshot_golden/client.snapshot
  scripts/wire_layout_probe.cc
  scripts/determinism_probe.cc
  tests/golden/snapshot/client.snapshot
)
for fixture in "${FIXTURES[@]}"; do
  if [[ ! -e "$fixture" ]]; then
    err "fixture missing: $fixture — a selftest leg below is running on nothing"
  fi
done

# ---- 1. check_lint.sh must pass the real tree -------------------------
if ! scripts/check_lint.sh >/dev/null; then
  err "check_lint.sh fails on the real tree (should be clean)"
fi

# ---- 2. check_lint.sh must FAIL the bad fixture tree ------------------
# The fixture tree has one violation per rule (naked lock, raw
# std::mutex, stray reinterpret_cast); a pass means a grep went dead.
if scripts/check_lint.sh scripts/lint_fixtures/bad_tree >/dev/null 2>&1; then
  err "check_lint.sh PASSED the bad fixture tree — a lint rule is dead"
fi

# ---- 3. wire-layout gate: positive and negative legs ------------------
# check_wire_layout.sh runs its own negative probe (-DDBSA_WIRE_PROBE_BAD
# must not compile) and fails if the bad probe slips through.
if ! scripts/check_wire_layout.sh >/dev/null; then
  err "check_wire_layout.sh failed (layout drifted, or the bad probe compiled)"
fi

# ---- 4. determinism gate: real tree + one fixture per rule ------------
# check_determinism.sh runs its own probe legs on the real tree (the
# static_asserts in util/determinism.h must reject the bad
# instantiations); each grep rule then proves itself against its own
# fixture — one tree per rule, so a single dead grep cannot hide behind
# the others.
if ! scripts/check_determinism.sh >/dev/null; then
  err "check_determinism.sh fails on the real tree (should be clean)"
fi
# bad_determinism_builtin_memcpy / bad_determinism_copy are separate
# trees, not extra files in bad_determinism_memcpy: sharing a tree would
# let a dead sub-pattern (__builtin_memcpy, std::copy) hide behind the
# plain-memcpy file still tripping the gate.
for fixture in bad_determinism_iter bad_determinism_ptr_key \
               bad_determinism_memcpy bad_determinism_builtin_memcpy \
               bad_determinism_copy; do
  if scripts/check_determinism.sh "scripts/lint_fixtures/$fixture" >/dev/null 2>&1; then
    err "check_determinism.sh PASSED $fixture — that rule's grep is dead"
  fi
done

# ---- 5. fuzz-corpus freshness gate must reject a bad corpus -----------
# Self-skips when make_corpus is not built (CI builds it and runs with
# --require). Each negative leg points check_fuzz_corpus.sh ITSELF at a
# scratch corpus dir — exercising the gate script's own diff loops, not
# a re-implementation of them — and the gate must exit nonzero. Three
# legs, one per failure mode the gate claims to catch: a stale seed, a
# seed the encoders no longer emit, and an emitted seed that is missing.
if [[ -x build/make_corpus ]]; then
  if ! scripts/check_fuzz_corpus.sh >/dev/null; then
    err "check_fuzz_corpus.sh fails on the checked-in corpus (stale seeds?)"
  fi
  scratch=$(mktemp -d)
  # Stale-seed leg: XOR-flip one payload byte (complementing whatever
  # value is there — a stored constant would stop detecting corruption
  # the day the encoder happened to emit that constant).
  cp fuzz/corpus/parse_frame/*.bin "$scratch/"
  byte=$(od -An -tu1 -j12 -N1 "$scratch/scatter_select.bin" | tr -d ' ')
  printf "$(printf '\\%03o' $((byte ^ 0xff)))" \
    | dd of="$scratch/scatter_select.bin" bs=1 seek=12 count=1 \
        conv=notrunc status=none
  if scripts/check_fuzz_corpus.sh build/make_corpus "$scratch" >/dev/null 2>&1; then
    err "corpus stale-seed leg: gate PASSED a corrupted seed — its cmp loop is dead"
  fi
  # Extra-seed leg: a checked-in seed the encoders no longer emit.
  rm -rf "$scratch"; scratch=$(mktemp -d)
  cp fuzz/corpus/parse_frame/*.bin "$scratch/"
  cp "$scratch/scatter_select.bin" "$scratch/zz_orphaned_seed.bin"
  if scripts/check_fuzz_corpus.sh build/make_corpus "$scratch" >/dev/null 2>&1; then
    err "corpus extra-seed leg: gate PASSED an orphaned seed — its no-longer-emitted loop is dead"
  fi
  # Missing-seed leg: an emitted seed absent from the corpus.
  rm -rf "$scratch"; scratch=$(mktemp -d)
  cp fuzz/corpus/parse_frame/*.bin "$scratch/"
  rm "$scratch/scatter_select.bin"
  if scripts/check_fuzz_corpus.sh build/make_corpus "$scratch" >/dev/null 2>&1; then
    err "corpus missing-seed leg: gate PASSED an incomplete corpus — its not-checked-in loop is dead"
  fi
  rm -rf "$scratch"
else
  echo "lint_selftest: build/make_corpus not built — corpus legs skipped (CI runs them)"
fi

# ---- 6. golden-snapshot gate must reject a corrupted fixture ----------
# Self-skips when snapshot_write is not built (CI builds it and runs
# with --require). The static corrupted fixture
# (scripts/lint_fixtures/bad_snapshot_golden: one XOR-flipped byte in
# client.snapshot's section data) proves the gate's cmp loop is live;
# the scratch legs prove the missing/extra-file loops are.
if [[ -x build/snapshot_write ]]; then
  if ! scripts/check_snapshot_golden.sh >/dev/null; then
    err "check_snapshot_golden.sh fails on the checked-in fixture (stale snapshots?)"
  fi
  if scripts/check_snapshot_golden.sh build/snapshot_write \
       scripts/lint_fixtures/bad_snapshot_golden >/dev/null 2>&1; then
    err "golden corrupt leg: gate PASSED a bit-flipped snapshot — its cmp loop is dead"
  fi
  scratch=$(mktemp -d)
  # Extra-file leg: a checked-in snapshot the writer no longer emits.
  cp tests/golden/snapshot/*.snapshot "$scratch/"
  cp "$scratch/client.snapshot" "$scratch/zz-orphan.snapshot"
  if scripts/check_snapshot_golden.sh build/snapshot_write "$scratch" >/dev/null 2>&1; then
    err "golden extra-file leg: gate PASSED an orphaned snapshot — its no-longer-emitted loop is dead"
  fi
  # Missing-file leg: an emitted snapshot absent from the fixture.
  rm -rf "$scratch"; scratch=$(mktemp -d)
  cp tests/golden/snapshot/*.snapshot "$scratch/"
  rm "$scratch/shard-1.snapshot"
  if scripts/check_snapshot_golden.sh build/snapshot_write "$scratch" >/dev/null 2>&1; then
    err "golden missing-file leg: gate PASSED an incomplete fixture — its not-checked-in loop is dead"
  fi
  rm -rf "$scratch"
else
  echo "lint_selftest: build/snapshot_write not built — golden snapshot legs skipped (CI runs them)"
fi

# ---- 7. thread-safety gate must FAIL the off-lock fixture -------------
# Clang-only: the fixture writes a DBSA_GUARDED_BY field with no lock
# held. Self-skips without clang (CI's static-analysis job has it).
if command -v "${CLANGXX:-clang++}" >/dev/null 2>&1; then
  if scripts/check_thread_safety.sh scripts/lint_fixtures/bad_off_lock_write.cc >/dev/null 2>&1; then
    err "check_thread_safety.sh PASSED the off-lock fixture — TSA gate is dead"
  fi
  if ! scripts/check_thread_safety.sh >/dev/null; then
    err "check_thread_safety.sh fails on the real tree (should be clean)"
  fi
else
  echo "lint_selftest: clang++ not installed — thread-safety legs skipped (CI runs them)"
fi

if [[ $fail -ne 0 ]]; then
  exit 1
fi
echo "lint_selftest: all checkers fail their bad fixtures (gates are live)"
