#!/usr/bin/env bash
# Wire-layout invariant gate: compiles scripts/wire_layout_probe.cc with
# -fsyntax-only, which re-evaluates the static_assert chain freezing the
# v4 envelope offsets in src/service/transport.h. Then the negative leg:
# the same probe with -DDBSA_WIRE_PROBE_BAD asserts a wrong layout and
# MUST fail to compile — a gate that cannot fail is no gate.
#
# Usage: check_wire_layout.sh [--bad-only]
#   --bad-only  run just the negative leg (used by lint_selftest.sh).
set -euo pipefail
cd "$(dirname "$0")/.."

CXX="${CXX:-}"
if [[ -z "$CXX" ]]; then
  for candidate in c++ g++ clang++; do
    if command -v "$candidate" >/dev/null 2>&1; then
      CXX="$candidate"
      break
    fi
  done
fi
if [[ -z "$CXX" ]]; then
  echo "check_wire_layout: no C++ compiler found" >&2
  exit 1
fi

FLAGS=(-std=c++17 -fsyntax-only -Isrc)

if [[ "${1:-}" != "--bad-only" ]]; then
  "$CXX" "${FLAGS[@]}" scripts/wire_layout_probe.cc
  echo "check_wire_layout: layout asserts hold"
fi

# Negative leg: the deliberately-wrong assert must NOT compile.
if "$CXX" "${FLAGS[@]}" -DDBSA_WIRE_PROBE_BAD scripts/wire_layout_probe.cc 2>/dev/null; then
  echo "check_wire_layout: BAD probe compiled — static_assert gate is dead" >&2
  exit 1
fi
echo "check_wire_layout: negative probe rejected (gate is live)"
