#!/usr/bin/env bash
# clang-tidy zero-findings gate over the library sources (.clang-tidy at
# the repo root picks the checks; WarningsAsErrors: '*' makes any finding
# fatal). Generates a compile_commands.json build dir if one is missing.
#
# Requires clang-tidy. Without it the script SKIPS with exit 0 (developer
# machines); CI passes --require so the gate cannot silently vanish.
#
# Usage: run_clang_tidy.sh [--require] [file.cc ...]
#   --require   fail (exit 2) if clang-tidy is unavailable.
#   file.cc     check just these files (default: all of src/**/*.cc).
set -euo pipefail
cd "$(dirname "$0")/.."

REQUIRE=0
FILES=()
for arg in "$@"; do
  case "$arg" in
    --require) REQUIRE=1 ;;
    *) FILES+=("$arg") ;;
  esac
done

TIDY="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$TIDY" >/dev/null 2>&1; then
  if [[ $REQUIRE -eq 1 ]]; then
    echo "run_clang_tidy: clang-tidy not found (--require set)" >&2
    exit 2
  fi
  echo "run_clang_tidy: SKIP (clang-tidy not installed; CI runs this)"
  exit 0
fi

# clang-tidy wants a compilation database; a syntax-only configure is
# enough (no build artifacts needed).
DB_DIR="build-tidy"
if [[ ! -f "$DB_DIR/compile_commands.json" ]]; then
  cmake -B "$DB_DIR" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
        -DDBSA_BUILD_TESTS=OFF -DDBSA_BUILD_BENCH=OFF \
        -DDBSA_BUILD_EXAMPLES=OFF >/dev/null
fi

if [[ ${#FILES[@]} -eq 0 ]]; then
  while IFS= read -r f; do
    FILES+=("$f")
  done < <(find src -name '*.cc' | sort)
fi

fail=0
for f in "${FILES[@]}"; do
  if ! "$TIDY" -p "$DB_DIR" --quiet "$f"; then
    echo "run_clang_tidy: $f has findings" >&2
    fail=1
  fi
done

if [[ $fail -ne 0 ]]; then
  exit 1
fi
echo "run_clang_tidy: ${#FILES[@]} files clean"
