#!/usr/bin/env bash
# Scrapes every shard of a running socket cluster over the wire: one
# kStatsRequest frame per endpoint, Prometheus text out. Thin wrapper
# around the example_cluster_stats binary so operators (and the smoke
# script) have a one-liner; see docs/operations.md § Monitoring for the
# metric catalogue and a worked slow-query example.
#
# usage: scripts/scrape_cluster_stats.sh PLACEMENT_FILE [BUILD_DIR] [extra flags]
#   scripts/scrape_cluster_stats.sh cluster.placement
#   scripts/scrape_cluster_stats.sh cluster.placement build --shard=2
#   scripts/scrape_cluster_stats.sh cluster.placement build --endpoint=replica
set -euo pipefail

if [[ $# -lt 1 ]]; then
  echo "usage: $0 PLACEMENT_FILE [BUILD_DIR] [extra --flags]" >&2
  exit 2
fi

PLACEMENT="$1"
BUILD_DIR="${2:-build}"
shift
[[ $# -gt 0 ]] && shift
SCRAPER="${BUILD_DIR}/example_cluster_stats"

if [[ ! -x "${SCRAPER}" ]]; then
  echo "missing binary: ${SCRAPER} (build first)" >&2
  exit 1
fi
if [[ ! -f "${PLACEMENT}" ]]; then
  echo "missing placement file: ${PLACEMENT}" >&2
  exit 1
fi

exec "${SCRAPER}" --placement="${PLACEMENT}" "$@"
