#!/usr/bin/env bash
# Docs rot guard (CI): fails on
#   1. dead intra-repo markdown links (missing files OR missing #anchors)
#      in README.md, ROADMAP.md and docs/*.md;
#   2. backticked repo paths (src/..., tests/..., docs/..., ...) that no
#      longer exist (globs like src/service/transport.* are expanded);
#   3. backticked C++ symbols in docs/*.md — `Foo::Bar` qualified names
#      and bare PascalCase identifiers — that appear nowhere under src/
#      or tests/ (i.e. the documented symbol was renamed or deleted).
#
# Pure bash + grep/sed: no python dependency, runs anywhere CI does.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0
err() {
  echo "check_docs_links: $*" >&2
  fail=1
}

FILES=(README.md ROADMAP.md docs/*.md)

# GitHub-style anchor of every heading in a file: lowercase, punctuation
# stripped, spaces to hyphens. Fenced code blocks are excluded first —
# a '# comment' inside ``` is not a heading, and treating it as one
# would mint phantom anchors that let dead #links pass.
anchors_of() {
  awk '/^```/ { fence = !fence; next } !fence' "$1" \
    | sed -n 's/^#\{1,6\} *//p' \
    | tr '[:upper:]' '[:lower:]' \
    | sed -e 's/[^a-z0-9 _-]//g' -e 's/ /-/g'
}

# ---- 1. relative markdown links ---------------------------------------
for f in "${FILES[@]}"; do
  dir=$(dirname "$f")
  while IFS= read -r link; do
    [[ -z "${link}" ]] && continue
    case "${link}" in
      http://* | https://* | mailto:*) continue ;;
    esac
    target=${link%%#*}
    anchor=""
    [[ "${link}" == *#* ]] && anchor=${link#*#}
    if [[ -z "${target}" ]]; then
      resolved=$f
    else
      resolved="${dir}/${target}"
    fi
    if [[ ! -e "${resolved}" ]]; then
      err "$f: dead link -> ${link}"
      continue
    fi
    if [[ -n "${anchor}" && -f "${resolved}" ]]; then
      if ! anchors_of "${resolved}" | grep -qx -- "${anchor}"; then
        err "$f: link -> ${link}: no heading for anchor '#${anchor}'"
      fi
    fi
  done < <(grep -oE '\]\([^)]+\)' "$f" | sed -e 's/^](//' -e 's/)$//')
done

# ---- 2. backticked repo paths -----------------------------------------
for f in "${FILES[@]}"; do
  while IFS= read -r p; do
    if [[ "${p}" == *'*'* ]]; then
      compgen -G "${p}" > /dev/null || err "$f: no file matches ${p}"
    elif [[ ! -e "${p}" ]]; then
      err "$f: references missing path ${p}"
    fi
  done < <(grep -oE '`(src|tests|bench|examples|scripts|docs)/[A-Za-z0-9_.*/-]+`' "$f" \
             | tr -d '`' | sort -u)
done

# ---- 3. symbols documented in docs/ must still exist ------------------
for f in docs/*.md; do
  # Qualified names: `Namespace::Member` (any :: depth). Accept if the
  # FULL qualified spelling appears anywhere, else require the final
  # component as a whole word (-w) — a bare substring grep would let
  # short components like `Status::OK` match prose and never catch the
  # rename/delete this guard exists for.
  while IFS= read -r sym; do
    last=${sym##*::}
    grep -rqF -- "${sym}" src tests \
      || grep -rqwF -- "${last}" src tests \
      || err "$f: documented symbol ${sym} not found under src/ or tests/"
  done < <(grep -oE '`[A-Za-z_][A-Za-z0-9_]*(::~?[A-Za-z_][A-Za-z0-9_]*)+`' "$f" \
             | tr -d '`' | sort -u)
  # Bare type-looking identifiers: PascalCase with at least one lowercase
  # letter (excludes acronyms like TCP and constants like NaN-free text).
  while IFS= read -r sym; do
    grep -rqF -- "${sym}" src tests \
      || err "$f: documented identifier ${sym} not found under src/ or tests/"
  done < <(grep -oE '`[A-Z][A-Za-z0-9]*`' "$f" | tr -d '`' \
             | grep -E '[a-z]' | sort -u)
done

if [[ "${fail}" -ne 0 ]]; then
  echo "check_docs_links: FAILED (fix the docs or the code reference)" >&2
  exit 1
fi
echo "check_docs_links: OK (${#FILES[@]} files checked)"
