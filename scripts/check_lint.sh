#!/usr/bin/env bash
# Custom lock-discipline lint (CI: the static-analysis job; locally just
# run it). Greps — no compiler needed — for the three ways code can slip
# past the Thread Safety Analysis that guards src/service/ and
# src/telemetry/ (util/thread_annotations.h):
#
#   1. naked .lock()/.unlock()/.try_lock() calls outside the annotated
#      wrappers — a manually driven mutex is invisible to the analysis
#      and to the MutexLock scoping discipline;
#   2. raw std::mutex / std::condition_variable declarations in
#      src/service/ or src/telemetry/ — unannotatable capabilities
#      (dbsa::Mutex / dbsa::CondVar are the blessed spellings);
#   3. reinterpret_cast outside the allowlist below — the socket layer's
#      sockaddr casts are the only sanctioned uses (clang-tidy's
#      bugprone checks do not flag those, POSIX demands them).
#
# Usage: check_lint.sh [root]   (root defaults to the repo; the lint
# selftest points it at a deliberately-bad fixture tree and expects
# exit 1).
set -euo pipefail
cd "$(dirname "$0")/.."

ROOT="${1:-.}"
fail=0
err() {
  echo "check_lint: $*" >&2
  fail=1
}

# The one file allowed to touch std::mutex / .lock(): the wrapper itself.
WRAPPER="util/thread_annotations.h"

# reinterpret_cast allowlist, one "path:why" per line. POSIX sockaddr
# punning is the entire sanctioned set; anything new needs a row here
# (and a justification in review).
REINTERPRET_ALLOWLIST=(
  "src/service/socket_transport.cc"  # sockaddr/sockaddr_in casts (POSIX API shape).
)

cxx_files() {
  find "$ROOT/$1" -type f \( -name '*.cc' -o -name '*.h' \) 2>/dev/null | sort
}

# Audited scope for the lock rules: the concurrent layers (service,
# telemetry), the engine facade (core), and the fuzz harnesses — fuzz
# drivers spawn servers too, so the same discipline applies.
LOCK_DIRS=(src/service src/telemetry src/core fuzz)

# ---- rule 1: no naked lock()/unlock()/try_lock() calls ----------------
for dir in "${LOCK_DIRS[@]}"; do
  while IFS= read -r file; do
    [[ "$file" == *"$WRAPPER" ]] && continue
    if grep -nE '\.(lock|unlock|try_lock)\(\)' "$file" \
        | grep -vE '^[0-9]+: *//' | grep -v '// *lint-allow-naked-lock'; then
      err "$file: naked .lock()/.unlock() — hold locks via dbsa::MutexLock"
    fi
  done < <(cxx_files "$dir")
done

# ---- rule 2: no raw std::mutex / std::condition_variable --------------
for dir in "${LOCK_DIRS[@]}"; do
  while IFS= read -r file; do
    [[ "$file" == *"$WRAPPER" ]] && continue
    if grep -nE 'std::(mutex|condition_variable|recursive_mutex|shared_mutex)\b' "$file" \
        | grep -vE '^[0-9]+: *//'; then
      err "$file: raw std lock type — use dbsa::Mutex / dbsa::CondVar (util/thread_annotations.h)"
    fi
  done < <(cxx_files "$dir")
done

# ---- rule 3: reinterpret_cast only on the allowlist -------------------
while IFS= read -r file; do
  rel="${file#"$ROOT"/}"
  allowed=0
  for entry in "${REINTERPRET_ALLOWLIST[@]}"; do
    [[ "$rel" == "$entry" ]] && allowed=1
  done
  [[ $allowed -eq 1 ]] && continue
  if grep -nE '\breinterpret_cast\b' "$file" \
      | grep -vE '^[0-9]+: *//' | grep -v '// *lint-allow-reinterpret'; then
    err "$rel: reinterpret_cast outside the allowlist (scripts/check_lint.sh)"
  fi
done < <(cxx_files src; cxx_files fuzz)

if [[ $fail -ne 0 ]]; then
  exit 1
fi
echo "check_lint: OK"
