// Compile-time probe for util/determinism.h, driven by
// scripts/check_determinism.sh (same prove-the-gate-is-live idiom as
// scripts/wire_layout_probe.cc):
//
//   default                            — every helper instantiates clean;
//   -DDBSA_DETERMINISM_PROBE_BAD_ITER  — RequireOrderedIteration on an
//                                        unordered_map must NOT compile;
//   -DDBSA_DETERMINISM_PROBE_BAD_MEMCPY — StoreWire of a padded struct
//                                        must NOT compile.
//
// A static_assert that never fires is indistinguishable from a deleted
// one; the bad legs are the proof it still bites.

#include <cstdint>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "util/determinism.h"

namespace {

// Deliberately padded: 4-byte member then 2-byte member leaves 2 tail
// padding bytes whose values are indeterminate — exactly what StoreWire
// exists to keep off the wire.
struct PaddedPair {
  std::uint32_t a;
  std::uint16_t b;
};

}  // namespace

int main() {
  using dbsa::util::BitCast;
  using dbsa::util::LoadWire;
  using dbsa::util::StoreWire;

  // Good legs: the ordered container passes the gate, primitives round-trip.
  dbsa::util::RequireOrderedIteration<std::map<int, int>>();
  static_assert(!dbsa::util::kIsHashOrdered<std::map<int, int>>, "");
  static_assert(dbsa::util::kIsHashOrdered<std::unordered_set<int>>, "");

  char buf[sizeof(std::uint64_t)] = {};
  StoreWire(buf, std::uint64_t{0x1122334455667788ULL});
  const double d = BitCast<double>(LoadWire<std::uint64_t>(buf));
  StoreWire(buf, BitCast<std::uint64_t>(d));

  const std::unordered_map<int, int> m{{2, 20}, {1, 10}};
  const auto keys = dbsa::util::SortedKeys(m);
  const auto items = dbsa::util::SortedItems(m);

#if defined(DBSA_DETERMINISM_PROBE_BAD_ITER)
  // Must NOT compile: hash-ordered container on a deterministic path.
  dbsa::util::RequireOrderedIteration<std::unordered_map<int, int>>();
#endif

#if defined(DBSA_DETERMINISM_PROBE_BAD_MEMCPY)
  // Must NOT compile: whole-struct store would put padding on the wire.
  const PaddedPair p{1, 2};
  char frame[sizeof(PaddedPair)] = {};
  StoreWire(frame, p);
#endif

  return static_cast<int>(keys.size() + items.size());
}
