// Fixture: hash-order iteration feeding an accumulator, no allow tag.
// check_determinism.sh rule 1 must flag the range-for below.
#include <unordered_map>

double SumInHashOrder(const std::unordered_map<int, double>& totals) {
  double out = 0.0;
  for (const auto& [key, value] : totals) {
    (void)key;
    out = out * 1.0000001 + value;  // Order-sensitive fold.
  }
  return out;
}
