// Fixture: whole-struct __builtin_memcpy into a frame buffer — same
// padding leak as plain memcpy, but the underscore defeats a naive
// \bmemcpy word-boundary pattern (underscore is a word character, so \b
// never fires). check_determinism.sh rule 3 must flag the untagged
// copy below; if it passes, the builtin spelling has gone invisible.
struct Header {
  unsigned short magic;   // 2 bytes, then 6 bytes padding
  unsigned long long correlation;
};

void Encode(const Header& h, char* frame) {
  __builtin_memcpy(frame, &h, sizeof(h));
}
