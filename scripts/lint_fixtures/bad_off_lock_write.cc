// lint_selftest fixture — MUST fail scripts/check_thread_safety.sh when
// clang is available: writes a DBSA_GUARDED_BY field without holding its
// mutex, the exact bug class the annotations exist to reject at compile
// time. Never compiled into the library.
#include "util/thread_annotations.h"

namespace bad {

class Counter {
 public:
  void SafeIncrement() {
    dbsa::MutexLock lock(mu_);
    ++value_;
  }

  // The violation: value_ is guarded by mu_, but nothing is held here.
  void RacyIncrement() { ++value_; }

 private:
  dbsa::Mutex mu_;
  int value_ DBSA_GUARDED_BY(mu_) = 0;
};

}  // namespace bad
