// lint_selftest fixture — MUST fail scripts/check_lint.sh rule 3: a
// reinterpret_cast outside the allowlist (only the socket layer's
// sockaddr casts are sanctioned). Never compiled.
#include <cstdint>

namespace bad {

inline double PunTheBits(uint64_t bits) {
  // Strict-aliasing violation dressed up as a conversion.
  return *reinterpret_cast<double*>(&bits);
}

}  // namespace bad
