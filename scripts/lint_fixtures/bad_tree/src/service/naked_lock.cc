// lint_selftest fixture — MUST fail scripts/check_lint.sh rule 1:
// a manually driven mutex (naked .lock()/.unlock()) that the Thread
// Safety Analysis and the MutexLock discipline cannot see. Never
// compiled; never part of the library.
#include "util/thread_annotations.h"

namespace bad {

inline int g_counter = 0;
inline dbsa::Mutex g_mu;

inline void Increment() {
  g_mu.Lock();
  ++g_counter;
  g_mu.Unlock();
}

// The actual violation check_lint.sh greps for:
struct RawDriver {
  std::mutex mu;
  void Touch() {
    mu.lock();
    mu.unlock();
  }
};

}  // namespace bad
