// lint_selftest fixture — MUST fail scripts/check_lint.sh rule 2: raw
// std::mutex / std::condition_variable declarations in src/service/,
// invisible to the Thread Safety Analysis. Never compiled.
#ifndef BAD_RAW_MUTEX_H_
#define BAD_RAW_MUTEX_H_

#include <condition_variable>
#include <mutex>
#include <queue>

namespace bad {

class UnannotatedQueue {
 public:
  void Push(int v) {
    std::lock_guard<std::mutex> lock(mu_);
    q_.push(v);
    cv_.notify_one();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::queue<int> q_;
};

}  // namespace bad

#endif  // BAD_RAW_MUTEX_H_
