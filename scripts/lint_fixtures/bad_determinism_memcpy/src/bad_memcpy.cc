// Fixture: whole-struct memcpy into a frame buffer — copies the struct's
// indeterminate padding bytes onto the wire. check_determinism.sh rule 3
// must flag the untagged memcpy below.
#include <cstdint>
#include <cstring>

struct Header {
  std::uint32_t length;
  std::uint16_t magic;  // 2 tail padding bytes follow.
};

void EncodeWholeStruct(char* frame, const Header& h) {
  std::memcpy(frame, &h, sizeof(h));
}
