// Fixture: std::copy of a struct's raw bytes into a frame buffer —
// memcpy in std:: clothing, moving the same indeterminate padding bytes
// without ever spelling "memcpy". check_determinism.sh rule 3 must flag
// the untagged copy below; if it passes, the std::copy leg is dead.
#include <algorithm>

struct Header {
  unsigned short magic;   // 2 bytes, then 6 bytes padding
  unsigned long long correlation;
};

void Encode(const Header& h, char* frame) {
  const char* bytes = reinterpret_cast<const char*>(&h);
  std::copy(bytes, bytes + sizeof(h), frame);
}
