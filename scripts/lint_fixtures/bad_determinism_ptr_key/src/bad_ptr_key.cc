// Fixture: std::map keyed on a pointer — iterates in address order,
// different every run under ASLR. check_determinism.sh rule 2 must flag
// the declaration below.
#include <map>

struct Session {};

std::map<const Session*, int> open_sessions;
