#!/usr/bin/env bash
# Golden-snapshot freshness gate: the checked-in fixture
# (tests/golden/snapshot/) must be byte-identical to what the CURRENT
# build/snapshot_write emits for the pinned flags below. Any change to
# the snapshot encoders (src/snapshot/snapshot.cc), the demo-city
# generator (data/cluster_demo.*) or the engine build that alters the
# emitted bytes MUST regenerate the fixture — otherwise a reader change
# could silently stop understanding files already deployed. Byte-diffing
# also doubles as a determinism check: two builds must emit identical
# snapshots (the property shard_server_main --snapshot and the
# conformance tests rely on).
#
# Usage: check_snapshot_golden.sh [--require] [path/to/snapshot_write] [golden-dir]
#   --require   fail instead of skipping when the binary is missing
#               (CI builds snapshot_write first, so it cannot skip there).
#   binary      defaults to build/snapshot_write.
#   golden-dir  defaults to tests/golden/snapshot; lint_selftest.sh
#               points it at a deliberately-corrupted fixture to prove
#               the stale/missing/extra legs below are live.
set -euo pipefail
cd "$(dirname "$0")/.."

# The fixture's generation flags — the ONE place they are defined. To
# regenerate after an intentional format change:
#   ./build/snapshot_write ${GOLDEN_FLAGS[*]} --out_dir=tests/golden/snapshot
GOLDEN_FLAGS=(--shards=2 --epoch=3 --points=600 --regions=6 --universe=1024
              --seed=20210111 --hilbert_level=12)

REQUIRE=0
if [[ "${1:-}" == "--require" ]]; then
  REQUIRE=1
  shift
fi
BIN="${1:-build/snapshot_write}"
GOLDEN="${2:-tests/golden/snapshot}"

if [[ ! -x "$BIN" ]]; then
  if [[ $REQUIRE -eq 1 ]]; then
    echo "check_snapshot_golden: $BIN not built (cmake target snapshot_write)" >&2
    exit 1
  fi
  echo "check_snapshot_golden: $BIN not built — skipped (CI runs with --require)"
  exit 0
fi

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

"$BIN" "${GOLDEN_FLAGS[@]}" --out_dir="$tmp" >/dev/null

fail=0
# Every checked-in file must be regenerated bit-for-bit, and nothing new
# may appear that is not checked in.
for want in "$GOLDEN"/*.snapshot; do
  name=$(basename "$want")
  if [[ ! -f "$tmp/$name" ]]; then
    echo "check_snapshot_golden: $name checked in but no longer emitted — regenerate and commit: ./$BIN ${GOLDEN_FLAGS[*]} --out_dir=$GOLDEN" >&2
    fail=1
  elif ! cmp -s "$want" "$tmp/$name"; then
    echo "check_snapshot_golden: $name is stale (snapshot encoder output changed) — regenerate and commit: ./$BIN ${GOLDEN_FLAGS[*]} --out_dir=$GOLDEN" >&2
    fail=1
  fi
done
for got in "$tmp"/*.snapshot; do
  name=$(basename "$got")
  if [[ ! -f "$GOLDEN/$name" ]]; then
    echo "check_snapshot_golden: $name emitted but not checked in — regenerate and commit: ./$BIN ${GOLDEN_FLAGS[*]} --out_dir=$GOLDEN" >&2
    fail=1
  fi
done

if [[ $fail -ne 0 ]]; then
  exit 1
fi
echo "check_snapshot_golden: $(ls "$GOLDEN"/*.snapshot | wc -l) files byte-identical"
