#!/usr/bin/env bash
# Determinism gate for the byte-identity invariant (docs/architecture.md,
# "Invariants"): with the plan pinned, payloads are byte-identical across
# the engine / pooled / sharded / loopback / TCP paths. Two bug classes
# break that silently — correct output every run, different bytes across
# runs — so no test and no sanitizer catches them. This lint does:
#
#   1. HASH-ORDER ITERATION — a range-for / .begin() walk over a
#      std::unordered_map / std::unordered_set feeding a merge, a gather
#      fold, a wire encoder or MetricRegistry::RenderText. The blessed
#      spellings are util::SortedKeys / util::SortedItems
#      (util/determinism.h); an order-insensitive walk (pure membership,
#      commutative fold, per-element side effect) carries an audited
#      `dbsa-lint-allow(determinism): <why>` tag on or just above the
#      loop line.
#   2. POINTER-KEYED ORDERED CONTAINERS — std::map/std::set keyed on a
#      pointer iterate in address order, which varies run to run; same
#      tag discipline.
#   3. RAW BYTE COPIES — a whole-struct memcpy (any spelling: memcpy,
#      std::memcpy, __builtin_memcpy) or a std::copy/std::copy_n into a
#      wire buffer copies indeterminate padding bytes onto the wire. All
#      byte movement goes through util::StoreWire / LoadWire / BitCast,
#      whose static_asserts reject anything that can carry padding; the
#      only raw copies are inside util/determinism.h itself or tagged
#      `dbsa-lint-allow(memcpy): <why>`. (Known escape: a bare
#      unqualified `copy(` from a `using namespace std` — the audited
#      dirs never use that.)
#
# Then the compiled legs (real tree only): scripts/determinism_probe.cc
# must compile clean, and its two deliberately-bad variants
# (-DDBSA_DETERMINISM_PROBE_BAD_ITER, -DDBSA_DETERMINISM_PROBE_BAD_MEMCPY)
# must NOT — proving the static_asserts in util/determinism.h are live,
# same idiom as check_wire_layout.sh.
#
# Usage: check_determinism.sh [root]   (root defaults to the repo; the
# lint selftest points it at deliberately-bad fixture trees under
# scripts/lint_fixtures/ and expects exit 1; probe legs run only on the
# real tree).
set -euo pipefail
cd "$(dirname "$0")/.."

ROOT="${1:-.}"
fail=0
err() {
  echo "check_determinism: $*" >&2
  fail=1
}

# Audited directories: everything that can touch a payload or a frame.
# tests/ and bench/ are exempt — their iteration order never reaches a
# wire frame, and the determinism_test asserts the end-to-end property.
AUDIT_DIRS=(src fuzz)

cxx_files() {
  for d in "${AUDIT_DIRS[@]}"; do
    find "$ROOT/$d" -type f \( -name '*.cc' -o -name '*.h' \) 2>/dev/null
  done | sort
}

# True when line $2 of file $1 carries the tag $3 on the same line or in
# the (up to) three lines directly above it — room for a two-line
# rationale comment over the flagged statement.
has_tag() {
  local file="$1" line="$2" tag="$3"
  local from=$((line - 3))
  [[ $from -lt 1 ]] && from=1
  sed -n "${from},${line}p" "$file" | grep -qF "$tag"
}

# ---- rule 1: no hash-order iteration without an audited tag -----------
# Scope per declaration site: a container declared in foo.h is looked for
# in foo.h and foo.cc (and vice versa) — unordered members are private in
# this codebase, so the pair is where every walk can live.
while IFS= read -r file; do
  stem="${file%.*}"
  names=$({ cat "$stem.h" "$stem.cc" 2>/dev/null || true; } \
    | sed -nE 's/.*unordered_(map|set)<.*> *[&*]? *([A-Za-z_][A-Za-z0-9_]*).*/\2/p' \
    | sort -u)
  [[ -z "$names" ]] && continue
  for name in $names; do
    # Range-for over the container (possibly member-qualified, e.g.
    # `mux.ops`) or an explicit .begin() walk.
    while IFS=: read -r line _; do
      [[ -z "$line" ]] && continue
      if ! has_tag "$file" "$line" 'dbsa-lint-allow(determinism)'; then
        err "$file:$line: iterating hash-ordered '$name' — use util::SortedKeys/SortedItems or tag dbsa-lint-allow(determinism) with a rationale"
      fi
    done < <(grep -nE "(for *\(.*: *([A-Za-z_][A-Za-z0-9_.>-]*(\.|->))?$name *\))|$name\.c?begin\(" "$file" \
               | grep -vE '^[0-9]+: *//' || true)
  done
done < <(cxx_files)

# ---- rule 2: no pointer-keyed ordered containers ----------------------
# std::map<T*, ...> / std::set<T*> iterate in address order — different
# every run under ASLR. Key on a stable id instead, or tag the
# declaration if iteration order provably never escapes.
while IFS= read -r file; do
  while IFS=: read -r line _; do
    [[ -z "$line" ]] && continue
    if ! has_tag "$file" "$line" 'dbsa-lint-allow(determinism)'; then
      err "$file:$line: pointer-keyed map/set iterates in address order — key on a stable id, or tag dbsa-lint-allow(determinism)"
    fi
  done < <(grep -nE 'std::(unordered_)?(map|set)< *(const +)?[A-Za-z_][A-Za-z0-9_:]* *\*' "$file" \
             | grep -vE '^[0-9]+: *//' || true)
done < <(cxx_files)

# ---- rule 3: no raw byte copies ----------------------------------------
# Field movement goes through util::StoreWire/LoadWire/BitCast; those
# three carry the blessed in-header tags. Anything else needs its own
# audited tag (the POSIX sockaddr blob and the framing-prefix splice in
# socket_transport.cc are the whole current set). The pattern must catch
# every spelling that moves raw bytes: \bmemcpy misses __builtin_memcpy
# (underscore is a word character, so \b never fires there), and
# std::copy of char ranges is memcpy in std:: clothing — both are
# matched explicitly.
while IFS= read -r file; do
  while IFS=: read -r line _; do
    [[ -z "$line" ]] && continue
    if ! has_tag "$file" "$line" 'dbsa-lint-allow(memcpy)'; then
      err "$file:$line: raw byte copy (memcpy/__builtin_memcpy/std::copy) — encode field-wise via util::StoreWire/LoadWire/BitCast (util/determinism.h), or tag dbsa-lint-allow(memcpy) with a rationale"
    fi
  done < <(grep -nE '(^|[^A-Za-z0-9_])((__builtin_)?memcpy|std::copy(_n)?)[[:space:]]*\(' "$file" \
             | grep -vE '^[0-9]+: *//' || true)
done < <(cxx_files)

# ---- compiled legs: the static_asserts must be live -------------------
if [[ "$ROOT" == "." ]]; then
  CXX="${CXX:-}"
  if [[ -z "$CXX" ]]; then
    for candidate in c++ g++ clang++; do
      if command -v "$candidate" >/dev/null 2>&1; then
        CXX="$candidate"
        break
      fi
    done
  fi
  if [[ -z "$CXX" ]]; then
    err "no C++ compiler found for the probe legs"
  else
    FLAGS=(-std=c++17 -fsyntax-only -Isrc)
    if ! "$CXX" "${FLAGS[@]}" scripts/determinism_probe.cc; then
      err "determinism_probe.cc failed to compile (good leg)"
    fi
    # Negative legs: each deliberately-bad instantiation must NOT compile.
    if "$CXX" "${FLAGS[@]}" -DDBSA_DETERMINISM_PROBE_BAD_ITER \
        scripts/determinism_probe.cc 2>/dev/null; then
      err "BAD_ITER probe compiled — RequireOrderedIteration gate is dead"
    fi
    if "$CXX" "${FLAGS[@]}" -DDBSA_DETERMINISM_PROBE_BAD_MEMCPY \
        scripts/determinism_probe.cc 2>/dev/null; then
      err "BAD_MEMCPY probe compiled — StoreWire primitive gate is dead"
    fi
  fi
fi

if [[ $fail -ne 0 ]]; then
  exit 1
fi
echo "check_determinism: OK"
