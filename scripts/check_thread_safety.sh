#!/usr/bin/env bash
# Thread Safety Analysis gate: clang syntax-checks every translation unit
# under src/ with -Wthread-safety -Werror, so a guarded field touched
# without its lock fails this script the way it fails the static-analysis
# CI job. The annotations live in util/thread_annotations.h; see
# docs/development.md ("Static analysis gates").
#
# Requires clang++ (the analysis is clang-only; GCC expands the macros to
# nothing). Without clang the script SKIPS with exit 0 so developer
# machines without clang stay green; CI passes --require to turn a
# missing clang into a failure instead of a silent hole.
#
# Usage: check_thread_safety.sh [--require] [file.cc ...]
#   --require   fail (exit 2) if clang++ is unavailable.
#   file.cc     check just these files (default: all of src/**/*.cc).
set -euo pipefail
cd "$(dirname "$0")/.."

REQUIRE=0
FILES=()
for arg in "$@"; do
  case "$arg" in
    --require) REQUIRE=1 ;;
    *) FILES+=("$arg") ;;
  esac
done

CLANG="${CLANGXX:-clang++}"
if ! command -v "$CLANG" >/dev/null 2>&1; then
  if [[ $REQUIRE -eq 1 ]]; then
    echo "check_thread_safety: clang++ not found (--require set)" >&2
    exit 2
  fi
  echo "check_thread_safety: SKIP (clang++ not installed; CI runs this)"
  exit 0
fi

if [[ ${#FILES[@]} -eq 0 ]]; then
  while IFS= read -r f; do
    FILES+=("$f")
  done < <(find src -name '*.cc' | sort)
fi

fail=0
for f in "${FILES[@]}"; do
  if ! "$CLANG" -std=c++17 -fsyntax-only -Isrc \
       -Wthread-safety -Wthread-safety-beta -Werror "$f"; then
    echo "check_thread_safety: $f failed" >&2
    fail=1
  fi
done

if [[ $fail -ne 0 ]]; then
  exit 1
fi
echo "check_thread_safety: ${#FILES[@]} files clean under -Wthread-safety"
