#!/usr/bin/env bash
# Fuzz-corpus freshness gate: the checked-in seed corpus
# (fuzz/corpus/parse_frame/) must be byte-identical to what
# fuzz/make_corpus.cc emits from the CURRENT encoders. A wire change that
# forgets to regenerate the corpus leaves the fuzzer mutating stale
# frames — every seed dies at the version check and coverage silently
# collapses to the error paths. Byte-diffing also doubles as an encoder
# determinism check: two builds must produce identical frames.
#
# Usage: check_fuzz_corpus.sh [--require] [path/to/make_corpus] [corpus-dir]
#   --require   fail instead of skipping when the binary is missing
#               (CI builds make_corpus first, so it cannot skip there).
#   binary      defaults to build/make_corpus (cmake -DDBSA_FUZZ=ON).
#   corpus-dir  defaults to fuzz/corpus/parse_frame; lint_selftest.sh
#               points it at deliberately-corrupted scratch corpora to
#               prove the stale/missing/extra-seed legs below are live.
set -euo pipefail
cd "$(dirname "$0")/.."

REQUIRE=0
if [[ "${1:-}" == "--require" ]]; then
  REQUIRE=1
  shift
fi
BIN="${1:-build/make_corpus}"
CORPUS="${2:-fuzz/corpus/parse_frame}"

if [[ ! -x "$BIN" ]]; then
  if [[ $REQUIRE -eq 1 ]]; then
    echo "check_fuzz_corpus: $BIN not built (cmake -DDBSA_FUZZ=ON, target make_corpus)" >&2
    exit 1
  fi
  echo "check_fuzz_corpus: $BIN not built — skipped (CI runs with --require)"
  exit 0
fi

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

"$BIN" "$tmp" >/dev/null

fail=0
# Every checked-in seed must be regenerated bit-for-bit, and nothing new
# may appear that is not checked in.
for want in "$CORPUS"/*.bin; do
  name=$(basename "$want")
  if [[ ! -f "$tmp/$name" ]]; then
    echo "check_fuzz_corpus: $name checked in but no longer emitted — regenerate and commit: ./$BIN $CORPUS" >&2
    fail=1
  elif ! cmp -s "$want" "$tmp/$name"; then
    echo "check_fuzz_corpus: $name is stale (encoder output changed) — regenerate and commit: ./$BIN $CORPUS" >&2
    fail=1
  fi
done
for got in "$tmp"/*.bin; do
  name=$(basename "$got")
  if [[ ! -f "$CORPUS/$name" ]]; then
    echo "check_fuzz_corpus: $name emitted but not checked in — regenerate and commit: ./$BIN $CORPUS" >&2
    fail=1
  fi
done

if [[ $fail -ne 0 ]]; then
  exit 1
fi
echo "check_fuzz_corpus: $(ls "$CORPUS"/*.bin | wc -l) seeds byte-identical"
