#!/usr/bin/env bash
# End-to-end socket-cluster smoke: real shard_server_main processes, a
# placement file, the demo client verifying byte-identity over TCP, a
# wire-level metrics scrape of the live cluster, and a failover drill
# (kill a primary, query again through its replica). Mirrors the
# walkthrough in docs/operations.md. CI runs this after the build; it
# exits non-zero if any query fails, any payload diverges from the
# loopback reference, any shard's scrape comes back without traffic, or
# the failover pass does not survive.
#
# A second arm repeats the drill against a SNAPSHOT-LOADED cluster
# (docs/snapshot-format.md): snapshot_write cuts an epoch-stamped
# snapshot set, every server loads its slice with --snapshot instead of
# rebuilding, and the client pins its queries to the stamped epoch — so
# the smoke also proves loaded == rebuilt over real TCP, that failover
# stays inside the pinned generation, and that a client pinned to the
# WRONG epoch is rejected typed rather than silently served.
#
# usage: scripts/run_socket_cluster_smoke.sh [BUILD_DIR]
set -euo pipefail

BUILD_DIR="${1:-build}"
SHARDS=4
EPOCH=7
SERVER="${BUILD_DIR}/shard_server_main"
CLIENT="${BUILD_DIR}/example_socket_cluster_demo"
SNAPSHOT_WRITE="${BUILD_DIR}/snapshot_write"
SCRAPER_WRAPPER="scripts/scrape_cluster_stats.sh"

for bin in "${SERVER}" "${CLIENT}" "${SNAPSHOT_WRITE}" \
           "${BUILD_DIR}/example_cluster_stats"; do
  if [[ ! -x "${bin}" ]]; then
    echo "missing binary: ${bin} (build first)" >&2
    exit 1
  fi
done

# DBSA_SMOKE_WORK_DIR pins the scratch directory to a known path (CI
# uploads it as a failure artifact); default is a throwaway mktemp dir.
if [[ -n "${DBSA_SMOKE_WORK_DIR:-}" ]]; then
  WORK_DIR="${DBSA_SMOKE_WORK_DIR}"
  mkdir -p "${WORK_DIR}"
else
  WORK_DIR="$(mktemp -d "${TMPDIR:-/tmp}/dbsa-smoke.XXXXXX")"
fi
PLACEMENT="${WORK_DIR}/cluster.placement"
SNAP_PLACEMENT="${WORK_DIR}/snapshot-cluster.placement"
SNAP_DIR="${WORK_DIR}/snap"
declare -a PIDS=()

cleanup() {
  local pid
  for pid in "${PIDS[@]:-}"; do
    kill "${pid}" 2>/dev/null || true
  done
  wait 2>/dev/null || true
  # CI uploads ${WORK_DIR} as a failure artifact before this trap runs
  # (DBSA_SMOKE_KEEP_WORK_DIR=1 skips the cleanup so it can).
  if [[ "${DBSA_SMOKE_KEEP_WORK_DIR:-0}" != "1" ]]; then
    rm -rf "${WORK_DIR}"
  fi
}
trap cleanup EXIT
echo "work dir: ${WORK_DIR}"

# Ports: a randomized base keeps parallel CI jobs off each other's toes;
# retry the whole cluster on a fresh base if anything fails to bind.
#
# start_cluster BASE MODE PLACEMENT_FILE — MODE is "rebuild" (servers
# build the dataset from flags) or "snapshot" (servers load
# ${SNAP_DIR}/shard-N.snapshot). Appends the new processes to PIDS; on
# failure, kills them and truncates PIDS back so a retry starts clean.
start_cluster() {
  local base=$1 mode=$2 placement=$3
  local first=${#PIDS[@]}
  : > "${placement}"
  for ((s = 0; s < SHARDS; ++s)); do
    echo "${s} 127.0.0.1:$((base + s)) 127.0.0.1:$((base + 100 + s))" \
      >> "${placement}"
  done
  local -a extra=()
  for ((s = 0; s < SHARDS; ++s)); do
    if [[ "${mode}" == snapshot ]]; then
      extra=(--snapshot="${SNAP_DIR}/shard-${s}.snapshot")
    fi
    "${SERVER}" --placement="${placement}" --shard="${s}" \
      ${extra[@]+"${extra[@]}"} \
      > "${WORK_DIR}/${mode}-shard${s}-primary.log" 2>&1 &
    PIDS+=($!)
    "${SERVER}" --placement="${placement}" --shard="${s}" --endpoint=replica \
      ${extra[@]+"${extra[@]}"} \
      > "${WORK_DIR}/${mode}-shard${s}-replica.log" 2>&1 &
    PIDS+=($!)
  done
  # Wait until every endpoint reports listening (rebuild-mode servers
  # build the dataset first, so give them a moment).
  local deadline=$((SECONDS + 120))
  while :; do
    local listening
    listening=$(grep -l "listening on" \
      "${WORK_DIR}/${mode}"-shard*-*.log 2>/dev/null | wc -l)
    [[ "${listening}" -eq $((2 * SHARDS)) ]] && return 0
    local pid ok=1
    if ((SECONDS >= deadline)); then
      echo "${mode} cluster did not come up; server logs:" >&2
      tail -n 5 "${WORK_DIR}/${mode}"-shard*-*.log >&2 || true
      ok=0
    fi
    # A server that died (port clash) never prints; fail fast.
    for pid in "${PIDS[@]:first}"; do
      if ! kill -0 "${pid}" 2>/dev/null; then
        ok=0
      fi
    done
    if [[ "${ok}" -ne 1 ]]; then
      for pid in "${PIDS[@]:first}"; do kill "${pid}" 2>/dev/null || true; done
      wait 2>/dev/null || true
      PIDS=("${PIDS[@]:0:first}")
      return 1
    fi
    sleep 0.3
  done
}

# launch MODE PLACEMENT_FILE — start_cluster with port-clash retries.
# Sets LAUNCH_FIRST_PID_INDEX to the PIDS index of the new cluster's
# first process (shard s: primary at FIRST+2s, replica at FIRST+2s+1).
launch() {
  local mode=$1 placement=$2
  local attempt base
  for attempt in 1 2 3; do
    base=$(( (RANDOM % 2000) * 4 + 42000 ))
    echo "== starting ${SHARDS}-shard ${mode} cluster (+replicas) at ports ${base}+ (attempt ${attempt})"
    LAUNCH_FIRST_PID_INDEX=${#PIDS[@]}
    if start_cluster "${base}" "${mode}" "${placement}"; then
      return 0
    fi
  done
  echo "failed to start the ${mode} cluster after 3 attempts" >&2
  return 1
}

# ---- arm 1: every process rebuilds the dataset from flags -------------

launch rebuild "${PLACEMENT}"
REBUILD_FIRST=${LAUNCH_FIRST_PID_INDEX}

echo "== pass 1: full workload over TCP, byte-identity vs the loopback seam"
"${CLIENT}" --placement="${PLACEMENT}"

echo "== scrape: kStatsRequest against every live primary"
SCRAPE="${WORK_DIR}/scrape.txt"
bash "${SCRAPER_WRAPPER}" "${PLACEMENT}" "${BUILD_DIR}" > "${SCRAPE}"
for ((s = 0; s < SHARDS; ++s)); do
  # Every shard must have served scatter traffic during pass 1 — a zero
  # (or missing) counter means the router never reached that shard over
  # the wire, which byte-identity alone would not catch if the loopback
  # reference skipped it the same way.
  count=$(grep -E "^dbsa_shard_scatter_requests_total\{shard=\"${s}\"\} " \
    "${SCRAPE}" | awk '{print $2}')
  if [[ -z "${count}" || "${count}" -eq 0 ]]; then
    echo "shard ${s}: no scatter traffic in scrape (got '${count:-missing}')" >&2
    exit 1
  fi
  if ! grep -qE "^dbsa_shard_handle_ms_count\{shard=\"${s}\"\} [1-9]" "${SCRAPE}"; then
    echo "shard ${s}: handle-latency histogram empty in scrape" >&2
    exit 1
  fi
  echo "   shard ${s}: ${count} scatter requests served"
done

echo "== failover drill: killing shard 1's primary"
kill "${PIDS[REBUILD_FIRST + 2]}" 2>/dev/null || true
sleep 0.5

echo "== pass 2: same workload, shard 1 served by its replica"
"${CLIENT}" --placement="${PLACEMENT}"

# ---- arm 2: snapshot-loaded cluster, epoch-pinned client --------------

echo "== snapshot arm: cutting the epoch-${EPOCH} snapshot set"
"${SNAPSHOT_WRITE}" --placement="${PLACEMENT}" --epoch="${EPOCH}" \
  --out_dir="${SNAP_DIR}"

launch snapshot "${SNAP_PLACEMENT}"
SNAP_FIRST=${LAUNCH_FIRST_PID_INDEX}

# Every endpoint must have LOADED its slice (not rebuilt) and pinned
# itself to the stamped epoch.
loaded=$(grep -l "loaded .* (epoch ${EPOCH}," \
  "${WORK_DIR}"/snapshot-shard*-*.log 2>/dev/null | wc -l)
if [[ "${loaded}" -ne $((2 * SHARDS)) ]]; then
  echo "expected $((2 * SHARDS)) endpoints loaded at epoch ${EPOCH}, saw ${loaded}" >&2
  exit 1
fi
echo "   all $((2 * SHARDS)) endpoints loaded snapshots at epoch ${EPOCH}"

echo "== pass 3: snapshot-loaded cluster vs rebuilt loopback reference, pinned to epoch ${EPOCH}"
# The client rebuilds its loopback reference from the dataset flags, so
# a clean exit here IS the loaded-equals-rebuilt byte comparison.
"${CLIENT}" --placement="${SNAP_PLACEMENT}" --epoch="${EPOCH}"

echo "== epoch-skew drill: a client pinned to epoch $((EPOCH - 1)) must be rejected"
if "${CLIENT}" --placement="${SNAP_PLACEMENT}" --epoch="$((EPOCH - 1))" \
    > "${WORK_DIR}/epoch-skew-client.log" 2>&1; then
  echo "client pinned to the WRONG epoch was served — epoch gate broken" >&2
  exit 1
fi
echo "   wrong-epoch client rejected (typed), as specified"

echo "== failover drill: killing snapshot shard 1's primary"
kill "${PIDS[SNAP_FIRST + 2]}" 2>/dev/null || true
sleep 0.5

echo "== pass 4: shard 1 served by its replica, still pinned to epoch ${EPOCH}"
"${CLIENT}" --placement="${SNAP_PLACEMENT}" --epoch="${EPOCH}"

echo "== socket cluster smoke OK (rebuild + snapshot arms)"
