#!/usr/bin/env bash
# End-to-end socket-cluster smoke: real shard_server_main processes, a
# placement file, the demo client verifying byte-identity over TCP, a
# wire-level metrics scrape of the live cluster, and a failover drill
# (kill a primary, query again through its replica). Mirrors the
# walkthrough in docs/operations.md. CI runs this after the build; it
# exits non-zero if any query fails, any payload diverges from the
# loopback reference, any shard's scrape comes back without traffic, or
# the failover pass does not survive.
#
# usage: scripts/run_socket_cluster_smoke.sh [BUILD_DIR]
set -euo pipefail

BUILD_DIR="${1:-build}"
SHARDS=4
SERVER="${BUILD_DIR}/shard_server_main"
CLIENT="${BUILD_DIR}/example_socket_cluster_demo"
SCRAPER_WRAPPER="scripts/scrape_cluster_stats.sh"

for bin in "${SERVER}" "${CLIENT}" "${BUILD_DIR}/example_cluster_stats"; do
  if [[ ! -x "${bin}" ]]; then
    echo "missing binary: ${bin} (build first)" >&2
    exit 1
  fi
done

WORK_DIR="$(mktemp -d "${TMPDIR:-/tmp}/dbsa-smoke.XXXXXX")"
PLACEMENT="${WORK_DIR}/cluster.placement"
declare -a PIDS=()

cleanup() {
  local pid
  for pid in "${PIDS[@]:-}"; do
    kill "${pid}" 2>/dev/null || true
  done
  wait 2>/dev/null || true
  rm -rf "${WORK_DIR}"
}
trap cleanup EXIT

# Ports: a randomized base keeps parallel CI jobs off each other's toes;
# retry the whole cluster on a fresh base if anything fails to bind.
start_cluster() {
  local base=$1
  : > "${PLACEMENT}"
  for ((s = 0; s < SHARDS; ++s)); do
    echo "${s} 127.0.0.1:$((base + s)) 127.0.0.1:$((base + 100 + s))" \
      >> "${PLACEMENT}"
  done
  for ((s = 0; s < SHARDS; ++s)); do
    "${SERVER}" --placement="${PLACEMENT}" --shard="${s}" \
      > "${WORK_DIR}/shard${s}-primary.log" 2>&1 &
    PIDS+=($!)
    "${SERVER}" --placement="${PLACEMENT}" --shard="${s}" --endpoint=replica \
      > "${WORK_DIR}/shard${s}-replica.log" 2>&1 &
    PIDS+=($!)
  done
  # Wait until every endpoint reports listening (servers build the
  # dataset first, so give them a moment).
  local deadline=$((SECONDS + 120))
  while :; do
    local listening
    listening=$(grep -l "listening on" "${WORK_DIR}"/shard*-*.log 2>/dev/null | wc -l)
    [[ "${listening}" -eq $((2 * SHARDS)) ]] && return 0
    if ((SECONDS >= deadline)); then
      echo "cluster did not come up; server logs:" >&2
      tail -n 5 "${WORK_DIR}"/shard*-*.log >&2 || true
      return 1
    fi
    # A server that died (port clash) never prints; fail fast.
    local pid
    for pid in "${PIDS[@]}"; do
      if ! kill -0 "${pid}" 2>/dev/null; then
        return 1
      fi
    done
    sleep 0.3
  done
}

started=0
for attempt in 1 2 3; do
  base=$(( (RANDOM % 2000) * 4 + 42000 ))
  echo "== starting ${SHARDS}-shard cluster (+replicas) at ports ${base}+ (attempt ${attempt})"
  if start_cluster "${base}"; then
    started=1
    break
  fi
  for pid in "${PIDS[@]:-}"; do kill "${pid}" 2>/dev/null || true; done
  wait 2>/dev/null || true
  PIDS=()
done
if [[ "${started}" -ne 1 ]]; then
  echo "failed to start the cluster after 3 attempts" >&2
  exit 1
fi

echo "== pass 1: full workload over TCP, byte-identity vs the loopback seam"
"${CLIENT}" --placement="${PLACEMENT}"

echo "== scrape: kStatsRequest against every live primary"
SCRAPE="${WORK_DIR}/scrape.txt"
bash "${SCRAPER_WRAPPER}" "${PLACEMENT}" "${BUILD_DIR}" > "${SCRAPE}"
for ((s = 0; s < SHARDS; ++s)); do
  # Every shard must have served scatter traffic during pass 1 — a zero
  # (or missing) counter means the router never reached that shard over
  # the wire, which byte-identity alone would not catch if the loopback
  # reference skipped it the same way.
  count=$(grep -E "^dbsa_shard_scatter_requests_total\{shard=\"${s}\"\} " \
    "${SCRAPE}" | awk '{print $2}')
  if [[ -z "${count}" || "${count}" -eq 0 ]]; then
    echo "shard ${s}: no scatter traffic in scrape (got '${count:-missing}')" >&2
    exit 1
  fi
  if ! grep -qE "^dbsa_shard_handle_ms_count\{shard=\"${s}\"\} [1-9]" "${SCRAPE}"; then
    echo "shard ${s}: handle-latency histogram empty in scrape" >&2
    exit 1
  fi
  echo "   shard ${s}: ${count} scatter requests served"
done

echo "== failover drill: killing shard 1's primary"
# PIDS layout: shard s primary at index 2s, replica at 2s+1.
kill "${PIDS[2]}" 2>/dev/null || true
sleep 0.5

echo "== pass 2: same workload, shard 1 served by its replica"
"${CLIENT}" --placement="${PLACEMENT}"

echo "== socket cluster smoke OK"
