#!/usr/bin/env bash
# Deep clang static-analyzer pass with cross-translation-unit (CTU)
# inlining, zero findings allowed. clang-tidy's clang-analyzer-* checks
# (see .clang-tidy) analyze one TU at a time — a null returned by a
# function DEFINED in another .cc is invisible there. Naive CTU loads the
# callee's serialized AST so the path-sensitive engine can walk through
# cross-file calls: exactly the shape of the transport/service seams
# (Encode in transport.cc, called from shard_server.cc and
# socket_transport.cc).
#
# Recipe (the documented naive-CTU flow):
#   1. -emit-ast every src/**/*.cc into build-ctu/, mirroring paths;
#   2. clang-extdef-mapping builds the USR -> definition-file index,
#      rewritten to point at the .ast files;
#   3. clang --analyze each TU with
#      experimental-enable-naive-ctu-analysis=true,ctu-dir=build-ctu.
#
# Requires clang++ and clang-extdef-mapping. Without them the script
# SKIPS with exit 0 (developer machines); CI passes --require so the
# gate cannot silently vanish.
#
# Usage: run_clang_analyzer.sh [--require]
set -euo pipefail
cd "$(dirname "$0")/.."

REQUIRE=0
[[ "${1:-}" == "--require" ]] && REQUIRE=1

CLANG="${CLANGXX:-clang++}"
MAPPING="${CLANG_EXTDEF_MAPPING:-clang-extdef-mapping}"
for tool in "$CLANG" "$MAPPING"; do
  if ! command -v "$tool" >/dev/null 2>&1; then
    if [[ $REQUIRE -eq 1 ]]; then
      echo "run_clang_analyzer: $tool not found (--require set)" >&2
      exit 2
    fi
    echo "run_clang_analyzer: SKIP ($tool not installed; CI runs this)"
    exit 0
  fi
done

FLAGS=(-std=c++17 -Isrc)
CTU_DIR="build-ctu"
rm -rf "$CTU_DIR"
mkdir -p "$CTU_DIR"

mapfile -t SOURCES < <(find src -name '*.cc' | sort)

# The extdef-mapping tool wants a compilation database; the build-tidy
# syntax-only configure (shared with run_clang_tidy.sh) provides it.
DB_DIR="build-tidy"
if [[ ! -f "$DB_DIR/compile_commands.json" ]]; then
  cmake -B "$DB_DIR" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
        -DDBSA_BUILD_TESTS=OFF -DDBSA_BUILD_BENCH=OFF \
        -DDBSA_BUILD_EXAMPLES=OFF >/dev/null
fi

# 1. Serialized ASTs, one per TU, mirroring the source layout so the
# rewritten map entries stay relative to ctu-dir.
for f in "${SOURCES[@]}"; do
  mkdir -p "$CTU_DIR/$(dirname "$f")"
  "$CLANG" "${FLAGS[@]}" -emit-ast -o "$CTU_DIR/$f.ast" "$f"
done

# 2. USR -> definition index. The tool emits absolute source paths;
# rewrite them to the .ast files relative to ctu-dir (the analyzer
# resolves entries against ctu-dir).
"$MAPPING" -p "$DB_DIR" "${SOURCES[@]}" 2>/dev/null \
  | sed -e "s| $(pwd)/| |" -e 's|\.cc$|.cc.ast|' \
  > "$CTU_DIR/externalDefMap.txt"
if [[ ! -s "$CTU_DIR/externalDefMap.txt" ]]; then
  echo "run_clang_analyzer: extdef map came out empty — CTU would silently degrade to single-TU" >&2
  exit 1
fi

# 3. Analyze. `clang --analyze` exits 0 even with findings, so the gate
# is on the diagnostic text, not the exit code.
fail=0
for f in "${SOURCES[@]}"; do
  out=$("$CLANG" --analyze "${FLAGS[@]}" \
        -Xclang -analyzer-config \
        -Xclang "experimental-enable-naive-ctu-analysis=true,ctu-dir=$CTU_DIR" \
        -Xclang -analyzer-output=text \
        -o /dev/null "$f" 2>&1 || true)
  if echo "$out" | grep -qE '(warning|error):'; then
    echo "run_clang_analyzer: findings in $f:" >&2
    echo "$out" >&2
    fail=1
  fi
done

if [[ $fail -ne 0 ]]; then
  exit 1
fi
echo "run_clang_analyzer: ${#SOURCES[@]} TUs clean under CTU analysis"
