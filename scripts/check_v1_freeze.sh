#!/usr/bin/env bash
# Freeze guard for the deprecated v1 serving surface.
#
# The v1 Request/Response shims (service/v1_compat.h/.cc) exist only to
# keep one release of source compatibility while callers migrate to the
# v2 query envelope (service/query.h). Nothing may be ADDED to them: any
# new capability belongs on the envelope. This script pins each shim file
# to its line count at freeze time and fails CI when a file grows.
# Shrinking (deleting shims as callers migrate) is always allowed —
# update the budget downward when you do.
set -euo pipefail
cd "$(dirname "$0")/.."

status=0
check() {
  local file="$1" budget="$2"
  if [[ ! -f "$file" ]]; then
    echo "v1-freeze: $file deleted — shim fully retired, OK"
    return
  fi
  local lines
  lines=$(wc -l < "$file")
  if (( lines > budget )); then
    echo "v1-freeze: FROZEN surface grew: $file has $lines lines" \
         "(budget $budget). Add to the v2 envelope instead."
    status=1
  else
    echo "v1-freeze: $file ${lines}/${budget} lines OK"
  fi
}

check src/service/v1_compat.h 72
check src/service/v1_compat.cc 99
exit "$status"
