// Compile-only probe for the wire-layout freeze (scripts/
// check_wire_layout.sh). Including transport.h re-evaluates its
// static_assert chain — the envelope offsets (magic 4, version 6, type 7,
// correlation 8, envelope 16, length counts 12 header bytes) — so the
// check needs no linking and no test runner: `-fsyntax-only` is the gate.
//
// With -DDBSA_WIRE_PROBE_BAD the probe asserts a WRONG layout on purpose;
// the checker compiles that variant expecting failure, proving the gate
// can actually fail (the negative self-test, same pattern as
// scripts/lint_selftest.sh).

#include "service/transport.h"

namespace dbsa::service {

#ifdef DBSA_WIRE_PROBE_BAD
// Deliberately false: correlation sits at offset 8, not 9. If this
// COMPILES, static_assert evaluation is broken and the gate is dead.
static_assert(kWireCorrelationOffset == 9, "intentional failure probe");
#else
static_assert(kWireMagicOffset == 4, "probe: magic offset");
static_assert(kWireVersionOffset == 6, "probe: version offset");
static_assert(kWireTypeOffset == 7, "probe: type offset");
static_assert(kWireCorrelationOffset == 8, "probe: correlation offset");
static_assert(kWireEnvelopeSize == 16, "probe: envelope size");
static_assert(kWireHeaderAfterLength == 12, "probe: length-field coverage");
#endif

}  // namespace dbsa::service
